package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"indulgence/internal/core"
	"indulgence/internal/fd"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
	"indulgence/internal/stats"
)

// E7FDSimulation reproduces Sect. 4: the failure detector simulated from ES
// round receipt patterns ("suspect exactly the processes whose round-k
// message is missing") satisfies the ◇P axioms — strong completeness and
// eventual strong accuracy — and a fortiori the ◇S axioms, on every run.
// The experiment samples random eventually synchronous runs across a range
// of stabilization times and checks the axioms on the recorded receive
// patterns.
func E7FDSimulation(samples int, seed int64) (*Outcome, error) {
	o := &Outcome{
		ID:    "E7",
		Title: "Sect. 4: simulating unreliable failure detectors (dP, dS) from ES rounds",
	}
	table := stats.NewTable("Axiom checks of the simulated detector over random ES runs",
		"GSR", "runs", "dP completeness+accuracy violations", "dS weak-accuracy violations", "consensus violations")
	rng := rand.New(rand.NewSource(seed))
	n, t := 5, 2
	for _, gsr := range []model.Round{1, 3, 6} {
		// Schedules are drawn serially (identical rng stream), the runs
		// fan out over the shared worker pool in bounded chunks, and the
		// axiom checks fold in sample order — the table is identical for
		// any worker count.
		cfgs := make([]sim.Config, samples)
		for i := range cfgs {
			cfgs[i] = sim.Config{
				Synchrony: model.ES,
				Schedule:  sched.RandomES(n, t, gsr, sched.RandomOpts{Rng: rng, MaxCrashRound: gsr + 3}),
				Proposals: distinctProposals(n),
				Factory:   core.New(core.Options{}),
			}
		}
		var dpViol, dsViol, consViol int
		err := batchChunked(cfgs, func(res *sim.Result) {
			out := fd.Simulate(res.Run)
			if err := fd.CheckDiamondP(res.Run, out); err != nil {
				dpViol++
			}
			if err := fd.CheckDiamondS(res.Run, out); err != nil {
				dsViol++
			}
			if !res.AllAliveDecided {
				consViol++
			}
		})
		if err != nil {
			return nil, fmt.Errorf("E7 gsr=%d: %w", gsr, err)
		}
		table.AddRowf(gsr, samples, dpViol, dsViol, consViol)
		o.expect(dpViol == 0, "E7: gsr=%d: %d dP violations", gsr, dpViol)
		o.expect(dsViol == 0, "E7: gsr=%d: %d dS violations", gsr, dsViol)
		o.expect(consViol == 0, "E7: gsr=%d: %d non-terminating runs", gsr, consViol)
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"after the stabilization round every correct process suspects exactly the crashed processes,",
		"so the ES lower bound transfers to asynchronous round models enriched with dP or dS.")
	return o, nil
}

// E8ResiliencePrice reproduces the Sect. 1.1 observation that indulgence
// has a resilience price: t < n/2 is necessary. A_{t+2} configured (against
// its constructor's will) with t = n/2 is executed under the split-brain
// schedule, in which each half of the system only hears itself for the
// first 2t+2 rounds — a legal ES adversary when t = n/2, since each half
// is an n−t quorum. The two halves decide different values. The control
// checks that the very same partition is *rejected by the model* when
// t < n/2: the schedule then violates t-resilience, which is exactly why a
// correct majority restores safety.
func E8ResiliencePrice() (*Outcome, error) {
	o := &Outcome{
		ID:    "E8",
		Title: "Resilience price (Sect. 1.1): t < n/2 is necessary for indulgent consensus",
	}
	n := 4
	split := model.Round(2*(n/2) + 2)
	s := sched.SplitBrain(n, split)
	props := distinctProposals(n)
	res, err := sim.Run(sim.Config{
		Synchrony: model.ES,
		Schedule:  s,
		Proposals: props,
		Factory:   core.New(core.Options{UnsafeSkipResilienceCheck: true}),
	})
	if err != nil {
		return nil, fmt.Errorf("E8 split-brain: %w", err)
	}
	table := stats.NewTable("Split-brain run of A_t+2 with t = n/2 = 2 (n=4, halves {1,2} and {3,4})",
		"process", "proposal", "decision", "round")
	agreement := true
	var first model.Value
	for i, d := range res.Decisions {
		dec := "-"
		if d.Decided() {
			dec = fmt.Sprintf("%d", d.Value)
			if i == 0 {
				first = d.Value
			} else if d.Value != first {
				agreement = false
			}
		}
		table.AddRowf(fmt.Sprintf("p%d", i+1), props[i], dec, d.Round)
	}
	o.Tables = append(o.Tables, table)
	o.expect(!agreement, "E8: expected the split-brain run to violate agreement, but it held")

	// Control: the same partition is not a legal ES adversary once
	// t < n/2 — each half of size n/2 < n−t cannot feed a quorum.
	control := sched.New(n, 1, sched.WithGSR(split+1))
	for r := model.Round(1); r <= split; r++ {
		for from := model.ProcessID(1); int(from) <= n; from++ {
			for to := model.ProcessID(1); int(to) <= n; to++ {
				if from == to || (int(from) <= n/2) == (int(to) <= n/2) {
					continue
				}
				control.Delay(r, from, to, split+1)
			}
		}
	}
	err = control.Validate(model.ES)
	o.expect(errors.Is(err, sched.ErrTResilience),
		"E8: control partition with t=1 should violate t-resilience, got %v", err)
	o.Notes = append(o.Notes,
		"with t = n/2 each half is an n-t quorum, so the partition is a legal ES run and the halves decide apart;",
		fmt.Sprintf("with t < n/2 the same partition is rejected by the model (%v),", err),
		"which is the operational content of the t < n/2 requirement of [Chandra & Toueg].")
	return o, nil
}
