package experiments

import (
	"fmt"

	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
	"indulgence/internal/stats"
)

// The ablation experiments remove one design ingredient of the paper's
// algorithms at a time and exhibit a *deterministic witness run* in which
// the crippled variant misbehaves while the faithful algorithm stays
// correct — the executable version of "why every line of Fig. 2/Fig. 5 is
// there". Each ablated/faithful pair is simulated concurrently on the
// shared sim.RunBatch pool; rows are rendered in the fixed pair order, so
// the tables are identical for any worker count.

// ablationRow renders one simulated variant as a table row.
func ablationRow(table *stats.Table, name string, res *sim.Result, rep check.Report) (agreement bool, gdr model.Round) {
	decisions := make([]string, 0, len(res.Decisions))
	for _, d := range res.Decisions {
		if d.Decided() {
			decisions = append(decisions, fmt.Sprintf("%d@r%d", d.Value, d.Round))
		} else {
			decisions = append(decisions, "-")
		}
	}
	table.AddRowf(name, fmt.Sprint(decisions), rep.Agreement, gdrOf(res))
	return rep.Agreement, gdrOf(res)
}

// AblationPhase1 removes one round from Phase 1 (t rounds instead of t+1).
// Witness (n=3, t=1): the victim p1 proposes the minimum but its messages
// are delayed for the whole shortened Phase 1, so p2 and p3 never learn
// the minimum nor accumulate enough Halt evidence — p1 decides its own
// minimum while p2 decides the other value. With the full t+1 rounds the
// same adversary is harmless: the extra round lets the estimate (or the
// suspicion evidence) propagate.
func AblationPhase1() (*Outcome, error) {
	o := &Outcome{
		ID:    "A1",
		Title: "Ablation: Phase 1 shortened to t rounds (why Lemma 11 needs t+1)",
	}
	// p1's messages delayed through rounds 1..2 (covering the shortened
	// algorithm's Phase 1 and Phase 2), synchronous from round 3.
	s := sched.DelayedSenderPrefix(3, 1, 2, 1)
	props := []model.Value{0, 1, 1}
	table := stats.NewTable("Witness run: n=3, t=1, proposals (0,1,1), p1 unheard for 2 rounds",
		"variant", "decisions", "agreement", "global round")
	ra, rb, repa, repb, err := runPair(
		core.New(core.Options{Phase1Rounds: 1}), s,
		core.New(core.Options{}), s.Clone(), props)
	if err != nil {
		return nil, fmt.Errorf("A1: %w", err)
	}
	ok, _ := ablationRow(table, "A_t+2[p1=1] (ablated)", ra, repa)
	o.expect(!ok, "A1: shortened Phase 1 should violate agreement on the witness run")
	ok, _ = ablationRow(table, "A_t+2 (faithful)", rb, repb)
	o.expect(ok, "A1: faithful A_t+2 should keep agreement on the witness run")
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"with only t Phase-1 rounds the elimination property (Lemma 6) fails: two distinct non-bottom",
		"new estimates survive to Phase 2 and the processes split their decision.")
	return o, nil
}

// AblationHaltExchange removes the Halt piggybacking (learning that
// someone suspected me). Witness (n=3, t=1): p1 is falsely suspected by
// everyone for t+2 rounds; without the exchange p1 never learns it is
// being suspected, keeps |Halt| = 0, pushes its (unique, minimal) estimate
// as a non-⊥ new estimate and decides it — while p2 and p3 decide the
// other value. The faithful algorithm detects the suspicion through the
// exchanged Halt sets, sends ⊥ and defers to the underlying consensus.
func AblationHaltExchange() (*Outcome, error) {
	o := &Outcome{
		ID:    "A2",
		Title: "Ablation: no Halt exchange (why suspicions are tracked symmetrically)",
	}
	s := sched.DelayedSenderPrefix(3, 1, 3, 1)
	props := []model.Value{0, 1, 1}
	table := stats.NewTable("Witness run: n=3, t=1, proposals (0,1,1), p1 unheard for 3 rounds",
		"variant", "decisions", "agreement", "global round")
	ra, rb, repa, repb, err := runPair(
		core.New(core.Options{DisableHaltExchange: true}), s,
		core.New(core.Options{}), s.Clone(), props)
	if err != nil {
		return nil, fmt.Errorf("A2: %w", err)
	}
	ok, _ := ablationRow(table, "A_t+2[nohaltx] (ablated)", ra, repa)
	o.expect(!ok, "A2: disabling the Halt exchange should violate agreement on the witness run")
	ok, _ = ablationRow(table, "A_t+2 (faithful)", rb, repb)
	o.expect(ok, "A2: faithful A_t+2 should keep agreement on the witness run")
	o.Tables = append(o.Tables, table)
	return o, nil
}

// AblationThreshold perturbs the |Halt| > t detector threshold in both
// directions: t+1 misses real false suspicions (agreement breaks on the
// same witness run as A2), while t−1 misclassifies ordinary crashes as
// false suspicions and forfeits the t+2 fast decision in a synchronous run
// with t crashes.
func AblationThreshold() (*Outcome, error) {
	o := &Outcome{
		ID:    "A3",
		Title: "Ablation: false-suspicion detector threshold (why |Halt| > t exactly)",
	}
	props := []model.Value{0, 1, 1}

	lenient := stats.NewTable("Threshold t+1 on the A2 witness run (n=3, t=1)",
		"variant", "decisions", "agreement", "global round")
	s := sched.DelayedSenderPrefix(3, 1, 3, 1)
	ra, rb, repa, repb, err := runPair(
		core.New(core.Options{DetectorThreshold: 2}), s,
		core.New(core.Options{}), s.Clone(), props)
	if err != nil {
		return nil, fmt.Errorf("A3: %w", err)
	}
	ok, _ := ablationRow(lenient, "A_t+2[thr=2] (lenient)", ra, repa)
	o.expect(!ok, "A3: lenient threshold should violate agreement on the witness run")
	ok, _ = ablationRow(lenient, "A_t+2 (faithful)", rb, repb)
	o.expect(ok, "A3: faithful A_t+2 should keep agreement on the witness run")
	o.Tables = append(o.Tables, lenient)

	strict := stats.NewTable("Threshold t-1 in a synchronous run with t crashes (n=3, t=1, p2 crashes silently)",
		"variant", "decisions", "agreement", "global round")
	crash := sched.New(3, 1)
	crash.CrashSilent(2, 1)
	ra, rb, repa, repb, err = runPair(
		core.New(core.Options{DetectorThreshold: -1}), crash,
		core.New(core.Options{}), crash.Clone(), props)
	if err != nil {
		return nil, fmt.Errorf("A3: %w", err)
	}
	_, gdr := ablationRow(strict, "A_t+2[thr=-1] (strict)", ra, repa)
	o.expect(int(gdr) > 1+2, "A3: strict threshold should forfeit the t+2 fast decision, decided at %d", gdr)
	_, gdr = ablationRow(strict, "A_t+2 (faithful)", rb, repb)
	o.expect(int(gdr) == 1+2, "A3: faithful A_t+2 should decide at t+2=3, decided at %d", gdr)
	o.Tables = append(o.Tables, strict)
	o.Notes = append(o.Notes,
		"|Halt| > t is the exact certificate: above it a false suspicion is guaranteed (at most t crashes exist),",
		"at or below it the suspicions may all be real crashes, so flagging them would sacrifice the fast path.")
	return o, nil
}

// AblationPlurality removes the (n−2t)-plurality adoption rule of A_{f+2}
// (always adopt the minimum). Witness (n=7, t=2): p1 crashes in round 1
// heard only by p2, which sees five identical estimates and decides; the
// remaining processes see p1's minimum, adopt it (instead of the decided
// plurality value), and decide it one round later after p2 silently
// crashes — an agreement violation. The faithful rule forces everyone to
// adopt the decided value (Lemma 14).
func AblationPlurality() (*Outcome, error) {
	o := &Outcome{
		ID:    "A4",
		Title: "Ablation: A_f+2 without (n-2t)-plurality adoption (why Lemma 14 needs it)",
	}
	n, t := 7, 2
	props := []model.Value{1, 2, 2, 2, 2, 2, 2}
	s := sched.New(n, t)
	s.CrashWithReceivers(1, 1, model.NewPIDSet(3, 4, 5, 6, 7)) // p2 misses p1's minimum
	s.CrashSilent(2, 2)                                        // the early decider vanishes
	table := stats.NewTable("Witness run: n=7, t=2, proposals (1,2,...,2), p1 crashes hiding 1 from p2 only",
		"variant", "decisions", "agreement", "global round")
	ra, rb, repa, repb, err := runPair(
		core.NewAfPlus2Opts(core.AfOptions{DisablePluralityAdoption: true}), s,
		core.NewAfPlus2(), s.Clone(), props)
	if err != nil {
		return nil, fmt.Errorf("A4: %w", err)
	}
	ok, _ := ablationRow(table, "A_f+2[noplur] (ablated)", ra, repa)
	o.expect(!ok, "A4: removing plurality adoption should violate agreement on the witness run")
	ok, _ = ablationRow(table, "A_f+2 (faithful)", rb, repb)
	o.expect(ok, "A4: faithful A_f+2 should keep agreement on the witness run")
	o.Tables = append(o.Tables, table)
	return o, nil
}
