package experiments

import (
	"fmt"
	"sort"
	"strings"

	"indulgence/internal/baseline"
	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/stats"
)

// E10AverageCase extends the paper's worst-case evaluation with the
// average-case profile it invites: the full distribution of global
// decision rounds over every serial run. The paper's headline concerns
// worst cases (t+2 vs 2t+2); the distributions show the other face of the
// trade-off — A_{t+2} pays its t+2 in *every* synchronous run (Phase 1
// has fixed length), while the coordinator baselines are faster in benign
// runs and only degrade under targeted crashes, and the Fig. 4
// optimization recovers the benign-run speed without giving up the
// worst-case optimum.
func E10AverageCase() (*Outcome, error) {
	o := &Outcome{
		ID:    "E10",
		Title: "Average-case price: distribution of decision rounds over ALL serial runs",
	}
	type algo struct {
		name     string
		factory  model.Factory
		wantMin  func(t int) int // expected fastest serial run
		wantMax  func(t int) int // expected worst serial run
		constant bool            // decision round identical in every run
	}
	algos := []algo{
		{"A_t+2", core.New(core.Options{}),
			func(t int) int { return t + 2 }, func(t int) int { return t + 2 }, true},
		{"A_t+2+ff", core.New(core.Options{FailureFreeFast: true}),
			func(int) int { return 2 }, func(t int) int { return t + 2 }, false},
		{"HurfinRaynal", baseline.NewHurfinRaynal(),
			func(int) int { return 2 }, func(t int) int { return 2*t + 2 }, false},
		{"CT rotating coord", baseline.NewCT(),
			func(int) int { return 3 }, func(t int) int { return 3*t + 3 }, false},
	}
	table := stats.NewTable("Decision-round distribution over all serial runs (prefix subsets)",
		"algorithm", "t", "n", "runs", "min", "mean", "max", "histogram round:count")
	for _, t := range []int{1, 2} {
		n := 2*t + 1
		for _, a := range algos {
			hist, err := lowerbound.Distribution(lowerbound.Config{
				N: n, T: t,
				Synchrony:     model.ES,
				Factory:       a.factory,
				Proposals:     distinctProposals(n),
				MaxCrashRound: model.Round(a.wantMax(t)),
				Mode:          lowerbound.PrefixSubsets,
			})
			if err != nil {
				return nil, fmt.Errorf("E10 %s t=%d: %w", a.name, t, err)
			}
			var (
				runs, total int
				min, max    model.Round
				first       = true
			)
			rounds := make([]model.Round, 0, len(hist))
			for r := range hist {
				rounds = append(rounds, r)
			}
			sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
			var cells []string
			for _, r := range rounds {
				c := hist[r]
				runs += c
				total += int(r) * c
				if first || r < min {
					min = r
				}
				if first || r > max {
					max = r
				}
				first = false
				cells = append(cells, fmt.Sprintf("%d:%d", r, c))
			}
			mean := float64(total) / float64(runs)
			table.AddRowf(a.name, t, n, runs, min, fmt.Sprintf("%.2f", mean), max, strings.Join(cells, " "))
			o.expect(int(min) == a.wantMin(t), "E10: %s t=%d min=%d want %d", a.name, t, min, a.wantMin(t))
			o.expect(int(max) == a.wantMax(t), "E10: %s t=%d max=%d want %d", a.name, t, max, a.wantMax(t))
			if a.constant {
				o.expect(len(hist) == 1, "E10: %s t=%d should decide at one fixed round, histogram %v", a.name, t, hist)
			}
		}
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"A_t+2 pays exactly t+2 in every serial run (a single histogram bar): worst-case optimal, constant;",
		"the coordinator baselines are faster in benign runs but degrade to 2t+2 / 3t+3 under targeted crashes;",
		"the Fig. 4 optimization recovers the 2-round benign case while keeping the t+2 worst case —",
		"the practical resolution of the worst-case/average-case tension the bounds create.")
	return o, nil
}
