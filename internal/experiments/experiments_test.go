package experiments_test

import (
	"strings"
	"testing"

	"indulgence/internal/experiments"
)

// TestAllExperiments is the repository's headline integration test: every
// simulator-backed experiment must reproduce its paper claim.
func TestAllExperiments(t *testing.T) {
	outs, err := experiments.All()
	if err != nil {
		t.Fatalf("experiments: %v", err)
	}
	wantIDs := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E10", "A1", "A2", "A3", "A4"}
	if len(outs) != len(wantIDs) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(wantIDs))
	}
	for i, o := range outs {
		if o.ID != wantIDs[i] {
			t.Errorf("outcome %d is %s, want %s", i, o.ID, wantIDs[i])
		}
		if !o.OK() {
			t.Errorf("%s failed:\n%s", o.ID, strings.Join(o.Failures, "\n"))
		}
		if len(o.Tables) == 0 {
			t.Errorf("%s produced no tables", o.ID)
		}
		if !strings.Contains(o.String(), o.ID) {
			t.Errorf("%s renders without its id", o.ID)
		}
	}
}

// TestE9Live exercises the live-runtime experiment (separate from All so a
// loaded machine's timing noise is easy to attribute).
func TestE9Live(t *testing.T) {
	o, err := experiments.E9LiveRuntime()
	if err != nil {
		t.Fatalf("E9: %v", err)
	}
	if !o.OK() {
		t.Errorf("E9 failed:\n%s", strings.Join(o.Failures, "\n"))
	}
}
