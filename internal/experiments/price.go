package experiments

import (
	"fmt"

	"indulgence/internal/baseline"
	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/sim"
	"indulgence/internal/stats"
)

// E3PriceTable reproduces the paper's headline comparison (Sects. 1.3–1.4):
// worst-case global decision rounds in synchronous runs, measured by
// exhaustive serial-run exploration, for
//
//   - FloodSet and FloodSetWS in SCS: t+1 (the non-indulgent yardstick),
//   - A_{t+2} and its ◇S adaptation in ES: t+2 (the price of indulgence
//     is exactly one round),
//   - Hurfin–Raynal in ES: 2t+2 (the previously fastest indulgent
//     algorithm),
//   - the CT-style underlying consensus in ES: 3t+3 (a generic
//     rotating-coordinator ◇S algorithm, included for scale).
//
// maxT bounds the resilience sweep. Exhaustive exploration is used for
// t ≤ 2; beyond that the state space explodes, so larger t report the
// known-worst *witness* run of each algorithm (the coordinator-killer
// schedule for the rotating-coordinator algorithms; any synchronous run
// for the flooding algorithms, whose decision round is schedule-
// independent), marked with a trailing 'w' in the table.
func E3PriceTable(maxT int) (*Outcome, error) {
	o := &Outcome{
		ID:    "E3",
		Title: "The price of indulgence: worst-case synchronous decision rounds (measured vs formula)",
	}
	type algo struct {
		name    string
		factory model.Factory
		scs     bool
		// formula computes the expected worst-case round for a given t.
		formula func(t int) int
		label   string
		// horizon computes the last round worth crashing in.
		horizon func(t int) model.Round
		// witness builds the known-worst schedule for large t.
		witness func(n, t int) *schedpkgSchedule
	}
	algos := []algo{
		{
			name: "FloodSet (SCS)", factory: baseline.NewFloodSet(), scs: true,
			formula: func(t int) int { return t + 1 }, label: "t+1",
			horizon: func(t int) model.Round { return model.Round(t + 1) },
			witness: witnessFailureFree,
		},
		{
			name: "FloodSetWS (SCS/P)", factory: baseline.NewFloodSetWS(), scs: true,
			formula: func(t int) int { return t + 1 }, label: "t+1",
			horizon: func(t int) model.Round { return model.Round(t + 1) },
			witness: witnessFailureFree,
		},
		{
			name: "A_t+2 (ES)", factory: core.New(core.Options{}),
			formula: func(t int) int { return t + 2 }, label: "t+2",
			horizon: func(t int) model.Round { return model.Round(t + 2) },
			witness: witnessFailureFree,
		},
		{
			name: "A_diamondS (ES+dS)", factory: core.NewDiamondS(),
			formula: func(t int) int { return t + 2 }, label: "t+2",
			horizon: func(t int) model.Round { return model.Round(t + 2) },
			witness: witnessFailureFree,
		},
		{
			name: "HurfinRaynal (ES+dS)", factory: baseline.NewHurfinRaynal(),
			formula: func(t int) int { return 2*t + 2 }, label: "2t+2",
			horizon: func(t int) model.Round { return model.Round(2*t + 2) },
			witness: witnessKiller(baseline.RoundsPerPhaseHR),
		},
		{
			name: "CT rotating coord (ES+dS)", factory: baseline.NewCT(),
			formula: func(t int) int { return 3*t + 3 }, label: "3t+3",
			horizon: func(t int) model.Round { return model.Round(3*t + 3) },
			witness: witnessKiller(baseline.RoundsPerPhaseCT),
		},
	}

	const maxExploreT = 2
	headers := []string{"algorithm", "formula"}
	for t := 1; t <= maxT; t++ {
		n := 2*t + 1
		headers = append(headers, fmt.Sprintf("t=%d (n=%d)", t, n))
	}
	table := stats.NewTable("Worst-case global decision round over all serial runs ('w' = witness run)", headers...)

	for _, a := range algos {
		row := []string{a.name, a.label}
		for t := 1; t <= maxT; t++ {
			n := 2*t + 1
			var (
				measured model.Round
				suffix   string
			)
			if t <= maxExploreT {
				var (
					sr  *sweepResult
					err error
				)
				if a.scs {
					sr, err = serialWorstSCS(a.factory, n, t, a.horizon(t), lowerbound.PrefixSubsets)
				} else {
					sr, err = serialWorst(a.factory, n, t, a.horizon(t), lowerbound.PrefixSubsets)
				}
				if err != nil {
					return nil, fmt.Errorf("E3 %s t=%d: %w", a.name, t, err)
				}
				measured = sr.worst
				o.expect(sr.violations == 0, "E3: %s t=%d consensus violation", a.name, t)
				o.expect(!sr.undecided, "E3: %s t=%d undecided run", a.name, t)
			} else {
				syn := model.ES
				if a.scs {
					syn = model.SCS
				}
				res, err := sim.Run(sim.Config{
					Synchrony: syn,
					Schedule:  a.witness(n, t),
					Proposals: distinctProposals(n),
					Factory:   a.factory,
				})
				if err != nil {
					return nil, fmt.Errorf("E3 %s t=%d witness: %w", a.name, t, err)
				}
				measured = gdrOf(res)
				suffix = "w"
			}
			row = append(row, fmt.Sprintf("%d%s", measured, suffix))
			o.expect(int(measured) == a.formula(t),
				"E3: %s t=%d measured %d, formula %s=%d", a.name, t, measured, a.label, a.formula(t))
		}
		table.AddRow(row...)
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"SCS algorithms decide at t+1; the indulgent optimum is t+2 (one extra round — the inherent price);",
		"the prior state of the art (Hurfin-Raynal) pays 2t+2, losing two rounds per crashed coordinator.")
	return o, nil
}

// E4FailureFree reproduces Sect. 5.2 (Fig. 4): in the failure-free,
// suspicion-free synchronous run, the optimized A_{t+2} decides at round 2
// — the floor proved in [Keidar & Rajsbaum], which no algorithm beats —
// while the unoptimized algorithm still takes t+2. The coordinator
// baselines are also measured for context.
func E4FailureFree() (*Outcome, error) {
	o := &Outcome{
		ID:    "E4",
		Title: "Failure-free optimization (Fig. 4): 2-round decision in well-behaved runs",
	}
	type algo struct {
		name    string
		factory func(t int) model.Factory
		expect  func(t int) int
		label   string
	}
	algos := []algo{
		{"A_t+2", func(int) model.Factory { return core.New(core.Options{}) },
			func(t int) int { return t + 2 }, "t+2"},
		{"A_t+2+ff", func(int) model.Factory { return core.New(core.Options{FailureFreeFast: true}) },
			func(int) int { return 2 }, "2"},
		{"HurfinRaynal", func(int) model.Factory { return baseline.NewHurfinRaynal() },
			func(int) int { return 2 }, "2"},
		{"CT rotating coord", func(int) model.Factory { return baseline.NewCT() },
			func(int) int { return 3 }, "3"},
	}
	headers := []string{"algorithm", "formula"}
	cases := []struct{ n, t int }{{3, 1}, {5, 2}, {7, 3}, {9, 4}}
	for _, c := range cases {
		headers = append(headers, fmt.Sprintf("n=%d,t=%d", c.n, c.t))
	}
	table := stats.NewTable("Global decision round in the failure-free synchronous run", headers...)
	for _, a := range algos {
		row := []string{a.name, a.label}
		for _, c := range cases {
			res, rep, err := runOnce(a.factory(c.t), schedFailureFree(c.n, c.t), distinctProposals(c.n))
			if err != nil {
				return nil, fmt.Errorf("E4 %s n=%d: %w", a.name, c.n, err)
			}
			gdr := gdrOf(res)
			row = append(row, fmt.Sprintf("%d", gdr))
			o.expect(int(gdr) == a.expect(c.t), "E4: %s n=%d t=%d measured %d want %d",
				a.name, c.n, c.t, gdr, a.expect(c.t))
			o.expect(rep.OK(), "E4: %s n=%d t=%d: %v", a.name, c.n, c.t, rep.Err())
			o.expect(gdr >= 2, "E4: %s n=%d decided in one round, below the 2-round lower bound", a.name, c.n)
		}
		table.AddRow(row...)
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"no algorithm decides in a single round (the 2-round well-behaved lower bound of [11] holds);",
		"the Fig. 4 optimization reaches that floor while retaining the t+2 guarantee in all other synchronous runs.")
	return o, nil
}
