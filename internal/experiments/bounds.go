package experiments

import (
	"fmt"

	"indulgence/internal/core"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/stats"
)

// E1LowerBound reproduces Proposition 1 (the t+2 lower bound) two ways:
//
//  1. Exhaustive search: over every serial run (all crash placements and
//     receiver subsets), the worst-case global decision round of A_{t+2}
//     is exactly t+2 — witnessing that *some* synchronous run of this
//     (optimal) algorithm needs t+2 rounds, matching the bound.
//  2. Construction: the five runs of Claim 5.1 (Fig. 1) are built and
//     executed, and every indistinguishability link of the proof is
//     checked on the recorded views, along with the absence of any
//     decision before round t+2.
func E1LowerBound() (*Outcome, error) {
	o := &Outcome{
		ID:    "E1",
		Title: "Proposition 1: t+2 round lower bound for indulgent consensus (synchronous runs)",
	}

	explore := stats.NewTable("Worst-case global decision round of A_t+2 over ALL serial runs",
		"n", "t", "subset mode", "runs", "worst round", "t+2", "tight")
	for _, tc := range []struct {
		n, t int
		mode lowerbound.SubsetMode
	}{
		{3, 1, lowerbound.AllSubsets},
		{4, 1, lowerbound.AllSubsets},
		{5, 2, lowerbound.AllSubsets},
	} {
		res, err := lowerbound.Explore(lowerbound.Config{
			N: tc.n, T: tc.t,
			Synchrony:     model.ES,
			Factory:       core.New(core.Options{}),
			Proposals:     distinctProposals(tc.n),
			MaxCrashRound: model.Round(tc.t + 2),
			Mode:          tc.mode,
		})
		if err != nil {
			return nil, fmt.Errorf("E1 explore n=%d t=%d: %w", tc.n, tc.t, err)
		}
		bound := tc.t + 2
		tight := int(res.WorstRound) == bound
		modeName := "all-subsets"
		if tc.mode == lowerbound.PrefixSubsets {
			modeName = "prefix"
		}
		explore.AddRowf(tc.n, tc.t, modeName, res.Runs, res.WorstRound, bound, tight)
		o.expect(tight, "E1: n=%d t=%d worst=%d, want exactly t+2=%d", tc.n, tc.t, res.WorstRound, bound)
		o.expect(res.PropertyViolation == nil, "E1: n=%d t=%d consensus violation: %v", tc.n, tc.t, res.PropertyViolation)
		o.expect(!res.Undecided, "E1: n=%d t=%d some serial run undecided", tc.n, tc.t)
	}
	o.Tables = append(o.Tables, explore)

	constr := stats.NewTable("Claim 5.1 constructions (Fig. 1) executed and checked",
		"n", "t", "k'", "s1~a1@target", "s0~a0@target", "worlds differ", "observers blind", "no decision<t+2", "consensus")
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}, {7, 3}} {
		props := distinctProposals(tc.n)
		props[0] = 0 // the victim proposes the unique minimum
		c51, err := lowerbound.BuildClaim51(core.New(core.Options{}), tc.n, tc.t, props)
		if err != nil {
			return nil, fmt.Errorf("E1 build claim51 n=%d t=%d: %w", tc.n, tc.t, err)
		}
		rep, err := c51.Verify(core.New(core.Options{}))
		if err != nil {
			return nil, fmt.Errorf("E1 verify claim51 n=%d t=%d: %w", tc.n, tc.t, err)
		}
		constr.AddRowf(tc.n, tc.t, rep.KPrime, rep.TargetS1A1, rep.TargetS0A0, rep.WorldsDiffer,
			rep.ObserversBlind, rep.NoEarlyDecision, rep.ConsensusOK)
		o.expect(rep.OK(), "E1: claim 5.1 n=%d t=%d failed: %v", tc.n, tc.t, rep.Details)
	}
	o.Tables = append(o.Tables, constr)

	// Bivalency landscape (Lemmas 2–4 measured on the real algorithm):
	// bivalent serial partial runs exist through round t−1 and not
	// through round t.
	bival := stats.NewTable("Bivalency horizon of A_t+2 over serial partial runs (binary proposals)",
		"n", "t", "bivalent initial config", "bivalent at depth t-1", "bivalent at depth t")
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		props := make([]model.Value, tc.n)
		for i := 1; i < tc.n; i++ {
			props[i] = 1
		}
		cfg := lowerbound.Config{
			N: tc.n, T: tc.t,
			Synchrony:     model.ES,
			Factory:       core.New(core.Options{}),
			Proposals:     props,
			MaxCrashRound: model.Round(tc.t + 2),
			Mode:          lowerbound.AllSubsets,
		}
		v, err := lowerbound.ClassifyInitial(cfg)
		if err != nil {
			return nil, fmt.Errorf("E1 valency n=%d: %w", tc.n, err)
		}
		initialBivalent := v == lowerbound.Bivalent
		_, atTm1, err := lowerbound.FindBivalentPartial(cfg, model.Round(tc.t-1), 16)
		if err != nil {
			return nil, fmt.Errorf("E1 bivalent t-1 n=%d: %w", tc.n, err)
		}
		keep := 1 << 20 // exhaustive at these sizes
		if tc.n > 4 {
			keep = 64
		}
		_, atT, err := lowerbound.FindBivalentPartial(cfg, model.Round(tc.t), keep)
		if err != nil {
			return nil, fmt.Errorf("E1 bivalent t n=%d: %w", tc.n, err)
		}
		bival.AddRowf(tc.n, tc.t, initialBivalent, atTm1, atT)
		o.expect(initialBivalent, "E1: n=%d t=%d initial configuration not bivalent (Lemma 3)", tc.n, tc.t)
		o.expect(atTm1, "E1: n=%d t=%d no bivalent (t-1)-round partial run (Lemma 4 depth)", tc.n, tc.t)
		o.expect(!atT, "E1: n=%d t=%d bivalent t-round partial run found; expected the Lemma 2 landscape", tc.n, tc.t)
	}
	o.Tables = append(o.Tables, bival)

	o.Notes = append(o.Notes,
		"the target process cannot distinguish the 0-deciding world from the 1-deciding world at the end of round t+1,",
		"while the other processes can never separate the bridging asynchronous runs before round k'+1 —",
		"so no algorithm can promise a global decision at round t+1; A_t+2 pays exactly one extra round;",
		"bivalency in purely serial runs dies at depth t (Lemma 2's landscape): the proof needs the",
		"asynchronous bridge of Claim 5.1 to carry the uncertainty one round further.")
	return o, nil
}

// E2FastDecision reproduces the matching upper bound (Lemma 13): in every
// synchronous run of A_{t+2}, every process that decides does so exactly at
// round t+2 — exhaustively over serial runs, and over random synchronous
// runs with arbitrary crash patterns (not just serial ones). The recorded
// runs are additionally checked against the elimination property (Lemma 6)
// and the synchronous Halt claim (Claim 13.1).
func E2FastDecision(samples int, seed int64) (*Outcome, error) {
	o := &Outcome{
		ID:    "E2",
		Title: "Fast decision (Lemma 13): A_t+2 globally decides at exactly t+2 in every synchronous run",
	}
	table := stats.NewTable("Decision rounds of A_t+2 in synchronous runs",
		"n", "t", "serial runs", "serial worst", "random runs", "random worst", "earliest seen", "t+2")
	// t = 3 sweeps are exercised by the benchmark harness; the largest
	// exhaustive case here keeps the suite fast.
	for _, tc := range []struct{ n, t int }{{3, 1}, {5, 1}, {5, 2}, {7, 2}} {
		sr, err := serialWorst(core.New(core.Options{}), tc.n, tc.t, model.Round(tc.t+2), lowerbound.PrefixSubsets)
		if err != nil {
			return nil, fmt.Errorf("E2 serial n=%d t=%d: %w", tc.n, tc.t, err)
		}
		rnd, err := randomSynchronousSweep(core.New(core.Options{}), tc.n, tc.t, samples, seed, true)
		if err != nil {
			return nil, fmt.Errorf("E2 random n=%d t=%d: %w", tc.n, tc.t, err)
		}
		bound := model.Round(tc.t + 2)
		earliest := sr.earliest
		if rnd.earliest < earliest {
			earliest = rnd.earliest
		}
		table.AddRowf(tc.n, tc.t, sr.runs, sr.worst, rnd.runs, rnd.worst, earliest, bound)
		o.expect(sr.worst == bound && rnd.worst == bound,
			"E2: n=%d t=%d worst (serial=%d random=%d) != t+2=%d", tc.n, tc.t, sr.worst, rnd.worst, bound)
		o.expect(earliest == bound,
			"E2: n=%d t=%d some process decided at %d != t+2=%d", tc.n, tc.t, earliest, bound)
		o.expect(sr.violations == 0 && rnd.violations == 0,
			"E2: n=%d t=%d consensus violations (serial=%d random=%d)", tc.n, tc.t, sr.violations, rnd.violations)
		o.expect(rnd.eliminationErrs == 0 && rnd.haltClaimErrs == 0,
			"E2: n=%d t=%d elimination/halt-claim check failures (%d/%d)", tc.n, tc.t, rnd.eliminationErrs, rnd.haltClaimErrs)
	}
	o.Tables = append(o.Tables, table)
	o.Notes = append(o.Notes,
		"every process that decides in a synchronous run decides at round t+2 exactly: the Phase-1/Phase-2",
		"structure admits no earlier decision and Lemma 13 guarantees no later one;",
		"random runs also passed the Lemma 6 elimination check and the Claim 13.1 Halt check.")
	return o, nil
}
