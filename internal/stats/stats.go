// Package stats aggregates the measurements the repository reports —
// round-complexity summaries of simulated runs and wall-clock latency
// distributions of the live service — and renders the fixed-width tables
// printed by the benchmark harness, the examples and the CLI.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Table is a simple fixed-width text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, one format-argument pair per
// column via fmt.Sprint.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprint(c))
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if t.title != "" {
		fmt.Fprintln(w, t.title)
	}
	fmt.Fprintln(w, line(t.headers))
	seps := make([]string, len(t.headers))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	fmt.Fprintln(w, line(seps))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Summary holds order statistics of a series of integers.
type Summary struct {
	// Count is the number of observations.
	Count int
	// Min and Max are the extremes (0 when Count is 0).
	Min, Max int
	// Mean is the arithmetic mean (0 when Count is 0).
	Mean float64
}

// Summarize computes the summary of xs.
func Summarize(xs []int) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	total := 0
	for _, x := range xs {
		total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = float64(total) / float64(len(xs))
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d max=%d mean=%.2f", s.Count, s.Min, s.Max, s.Mean)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted by the
// nearest-rank method (index ⌈q·n⌉−1); sorted must be ascending. Zero
// observations yield zero.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	switch {
	case q <= 0:
		return sorted[0]
	case q >= 1:
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// LatencySummary holds order statistics of a latency distribution.
type LatencySummary struct {
	// Count is the number of observations.
	Count int
	// Min, Max and Mean describe the distribution's extremes and centre.
	Min, Max, Mean time.Duration
	// P50, P90, P99 and P999 are nearest-rank percentiles (P999 is the
	// 99.9th — the tail a latency SLO actually bounds; below 1000
	// samples it coincides with the maximum by nearest-rank).
	P50, P90, P99, P999 time.Duration
}

// SummarizeDurations computes the latency summary of ds. The input is not
// modified.
func SummarizeDurations(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return LatencySummary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  total / time.Duration(len(sorted)),
		P50:   Quantile(sorted, 0.50),
		P90:   Quantile(sorted, 0.90),
		P99:   Quantile(sorted, 0.99),
		P999:  Quantile(sorted, 0.999),
	}
}

// String implements fmt.Stringer.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d min=%s p50=%s p90=%s p99=%s p999=%s max=%s mean=%s",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.P999, s.Max, s.Mean)
}

// Reservoir keeps a bounded uniform sample of a stream (Vitter's
// Algorithm R), so summaries over arbitrarily long runs use constant
// memory while staying unbiased over the whole lifetime. Both the service
// (proposal latencies, decision rounds) and the journal (fsync latencies)
// sample through it. Sampling decisions come from a per-reservoir
// splitmix64 generator seeded at construction — never from global PRNG
// state — so the retained sample is a pure function of (seed, stream)
// and two reservoirs never perturb each other's sequences. Not safe for
// concurrent use; callers serialize Add under their own counters' lock.
type Reservoir[T any] struct {
	capacity int
	seen     int
	rng      uint64
	buf      []T
}

// NewReservoir returns a reservoir holding at most capacity samples
// (capacity < 1 selects 1 << 16) with a fixed default seed. Callers
// running several reservoirs over correlated streams should use
// NewReservoirSeeded with distinct seeds to decorrelate their samples.
func NewReservoir[T any](capacity int) *Reservoir[T] {
	return NewReservoirSeeded[T](capacity, 0x1905b1ec5e58e7a1)
}

// NewReservoirSeeded is NewReservoir with an explicit sampling seed.
func NewReservoirSeeded[T any](capacity int, seed uint64) *Reservoir[T] {
	if capacity < 1 {
		capacity = 1 << 16
	}
	return &Reservoir[T]{capacity: capacity, rng: seed}
}

// roll returns a uniform index in [0, n) from the reservoir's splitmix64
// stream. The modulo bias is below n/2^64 — many orders of magnitude
// under the sampling noise of any reservoir this package sizes.
func (r *Reservoir[T]) roll(n int) int {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// Add offers one observation to the sample.
func (r *Reservoir[T]) Add(x T) {
	r.seen++
	if len(r.buf) < r.capacity {
		r.buf = append(r.buf, x)
		return
	}
	if i := r.roll(r.seen); i < r.capacity {
		r.buf[i] = x
	}
}

// Seen returns how many observations were offered (retained or not).
func (r *Reservoir[T]) Seen() int { return r.seen }

// Values returns the retained sample. The slice aliases the reservoir's
// buffer; callers must not mutate it.
func (r *Reservoir[T]) Values() []T { return r.buf }
