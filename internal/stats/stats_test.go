package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "col", "longer column")
	tb.AddRow("a", "b")
	tb.AddRowf(12, 3.5)
	got := tb.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), got)
	}
	if lines[0] != "Title" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.Contains(lines[1], "col") || !strings.Contains(lines[1], "longer column") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line %q", lines[2])
	}
	if !strings.Contains(lines[3], "a") || !strings.Contains(lines[3], "b") {
		t.Errorf("row line %q", lines[3])
	}
	if !strings.Contains(lines[4], "12") || !strings.Contains(lines[4], "3.5") {
		t.Errorf("formatted row line %q", lines[4])
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")            // short row padded
	tb.AddRow("x", "y", "extra") // long row truncated
	got := tb.String()
	if strings.Contains(got, "extra") {
		t.Errorf("over-wide row not truncated:\n%s", got)
	}
	// No title line when title empty.
	if strings.HasPrefix(got, "\n") {
		t.Errorf("leading blank line:\n%q", got)
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("aaaa", "b")
	tb.AddRow("c", "dddd")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// The second column must start at the same offset in both rows.
	off1 := strings.Index(lines[2], "b")
	off2 := strings.Index(lines[3], "dddd")
	if off1 != off2 {
		t.Errorf("column misaligned: %d vs %d\n%s", off1, off2, tb)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{3, 1, 2})
	if s.Count != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summary")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuantile(t *testing.T) {
	ds := []time.Duration{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	// Nearest-rank: index ⌈q·n⌉−1, so p50 of 10 samples is the 5th value
	// and p90 the 9th — the maximum is reached only at q = 1 (or when
	// ⌈q·n⌉ = n, as for p99 here).
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 10}, {0.5, 50}, {0.9, 90}, {0.99, 100}, {1, 100}, {-1, 10}, {2, 100},
	}
	for _, c := range cases {
		if got := Quantile(ds, c.q); got != c.want {
			t.Errorf("Quantile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
}

func TestSummarizeDurations(t *testing.T) {
	if s := SummarizeDurations(nil); s != (LatencySummary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	// Deliberately unsorted input; it must not be mutated.
	ds := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	s := SummarizeDurations(ds)
	if ds[0] != 30*time.Millisecond {
		t.Fatal("input slice was mutated")
	}
	if s.Count != 3 || s.Min != 10*time.Millisecond || s.Max != 30*time.Millisecond ||
		s.Mean != 20*time.Millisecond || s.P50 != 20*time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// TestQuantileEdgeCases is the table-driven boundary sweep of the
// nearest-rank rule: empty and single-sample inputs, the q=0/q=1
// extremes, and ranks that land exactly on and just past sample
// boundaries.
func TestQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty q=0", nil, 0, 0},
		{"empty q=0.5", nil, 0.5, 0},
		{"empty q=1", nil, 1, 0},
		{"single q=0", []time.Duration{42}, 0, 42},
		{"single q=0.5", []time.Duration{42}, 0.5, 42},
		{"single q=1", []time.Duration{42}, 1, 42},
		{"single q<0", []time.Duration{42}, -0.1, 42},
		{"single q>1", []time.Duration{42}, 1.1, 42},
		{"pair q=0", []time.Duration{1, 2}, 0, 1},
		// ⌈0.5·2⌉−1 = 0: the median of two samples is the lower one.
		{"pair q=0.5", []time.Duration{1, 2}, 0.5, 1},
		// ⌈0.51·2⌉−1 = 1: just past the boundary selects the upper.
		{"pair q=0.51", []time.Duration{1, 2}, 0.51, 2},
		{"pair q=1", []time.Duration{1, 2}, 1, 2},
		// ⌈0.25·4⌉−1 = 0 lands exactly on the first rank boundary.
		{"quad q=0.25", []time.Duration{1, 2, 3, 4}, 0.25, 1},
		{"quad q=0.26", []time.Duration{1, 2, 3, 4}, 0.26, 2},
		// q=0.75 of 4: ⌈3⌉−1 = 2.
		{"quad q=0.75", []time.Duration{1, 2, 3, 4}, 0.75, 3},
		// A q so close to 1 that ⌈q·n⌉ = n must clamp to the maximum,
		// not index past the slice.
		{"quad q=0.999", []time.Duration{1, 2, 3, 4}, 0.999, 4},
	}
	for _, c := range cases {
		if got := Quantile(c.sorted, c.q); got != c.want {
			t.Errorf("%s: Quantile = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSummarizeDurationsEdgeCases covers the degenerate distributions:
// no samples, one sample (every statistic collapses to it), and
// all-equal samples.
func TestSummarizeDurationsEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []time.Duration
		want LatencySummary
	}{
		{"empty", nil, LatencySummary{}},
		{"single", []time.Duration{5 * time.Millisecond}, LatencySummary{
			Count: 1,
			Min:   5 * time.Millisecond, Max: 5 * time.Millisecond,
			Mean: 5 * time.Millisecond,
			P50:  5 * time.Millisecond, P90: 5 * time.Millisecond, P99: 5 * time.Millisecond,
			P999: 5 * time.Millisecond,
		}},
		{"all equal", []time.Duration{7, 7, 7}, LatencySummary{
			Count: 3, Min: 7, Max: 7, Mean: 7, P50: 7, P90: 7, P99: 7, P999: 7,
		}},
	}
	for _, c := range cases {
		if got := SummarizeDurations(c.in); got != c.want {
			t.Errorf("%s: summary = %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestSummarizeDurationsP999Boundary pins the nearest-rank boundary of
// the 99.9th percentile: below 1000 samples ⌈0.999·n⌉ = n, so P999
// coincides with the maximum; at exactly 1000 samples it first
// separates, selecting the second-highest observation.
func TestSummarizeDurationsP999Boundary(t *testing.T) {
	ramp := func(n int) []time.Duration {
		ds := make([]time.Duration, n)
		for i := range ds {
			ds[i] = time.Duration(i + 1)
		}
		return ds
	}
	cases := []struct {
		n    int
		want time.Duration
	}{
		// ⌈0.999·999⌉ = 999 → the maximum itself.
		{999, 999},
		// ⌈0.999·1000⌉ = 999 → rank 998, one below the maximum.
		{1000, 999},
		// ⌈0.999·2000⌉ = 1998 → two tail samples above it.
		{2000, 1998},
	}
	for _, c := range cases {
		s := SummarizeDurations(ramp(c.n))
		if s.P999 != c.want {
			t.Errorf("n=%d: P999 = %d, want %d", c.n, s.P999, c.want)
		}
		if got := Quantile(ramp(c.n), 0.999); got != c.want {
			t.Errorf("n=%d: Quantile(0.999) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize([]int{9}); s.Count != 1 || s.Min != 9 || s.Max != 9 || s.Mean != 9 {
		t.Fatalf("single-sample summary = %+v", s)
	}
	if s := Summarize([]int{-2, 2}); s.Min != -2 || s.Max != 2 || s.Mean != 0 {
		t.Fatalf("signed summary = %+v", s)
	}
}

func TestReservoir(t *testing.T) {
	r := NewReservoir[int](4)
	for i := 1; i <= 3; i++ {
		r.Add(i)
	}
	if got := r.Values(); len(got) != 3 || r.Seen() != 3 {
		t.Fatalf("under-full reservoir: %v seen=%d", got, r.Seen())
	}
	for i := 4; i <= 1000; i++ {
		r.Add(i)
	}
	if got := r.Values(); len(got) != 4 || r.Seen() != 1000 {
		t.Fatalf("full reservoir: %v seen=%d", got, r.Seen())
	}
	for _, v := range r.Values() {
		if v < 1 || v > 1000 {
			t.Fatalf("sample %d outside the stream", v)
		}
	}
	if NewReservoir[int](0).capacity != 1<<16 {
		t.Fatal("default capacity not applied")
	}
}
