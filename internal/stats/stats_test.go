package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "col", "longer column")
	tb.AddRow("a", "b")
	tb.AddRowf(12, 3.5)
	got := tb.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), got)
	}
	if lines[0] != "Title" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.Contains(lines[1], "col") || !strings.Contains(lines[1], "longer column") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line %q", lines[2])
	}
	if !strings.Contains(lines[3], "a") || !strings.Contains(lines[3], "b") {
		t.Errorf("row line %q", lines[3])
	}
	if !strings.Contains(lines[4], "12") || !strings.Contains(lines[4], "3.5") {
		t.Errorf("formatted row line %q", lines[4])
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")            // short row padded
	tb.AddRow("x", "y", "extra") // long row truncated
	got := tb.String()
	if strings.Contains(got, "extra") {
		t.Errorf("over-wide row not truncated:\n%s", got)
	}
	// No title line when title empty.
	if strings.HasPrefix(got, "\n") {
		t.Errorf("leading blank line:\n%q", got)
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("aaaa", "b")
	tb.AddRow("c", "dddd")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// The second column must start at the same offset in both rows.
	off1 := strings.Index(lines[2], "b")
	off2 := strings.Index(lines[3], "dddd")
	if off1 != off2 {
		t.Errorf("column misaligned: %d vs %d\n%s", off1, off2, tb)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{3, 1, 2})
	if s.Count != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summary")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
