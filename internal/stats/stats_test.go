package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "col", "longer column")
	tb.AddRow("a", "b")
	tb.AddRowf(12, 3.5)
	got := tb.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), got)
	}
	if lines[0] != "Title" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.Contains(lines[1], "col") || !strings.Contains(lines[1], "longer column") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line %q", lines[2])
	}
	if !strings.Contains(lines[3], "a") || !strings.Contains(lines[3], "b") {
		t.Errorf("row line %q", lines[3])
	}
	if !strings.Contains(lines[4], "12") || !strings.Contains(lines[4], "3.5") {
		t.Errorf("formatted row line %q", lines[4])
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")            // short row padded
	tb.AddRow("x", "y", "extra") // long row truncated
	got := tb.String()
	if strings.Contains(got, "extra") {
		t.Errorf("over-wide row not truncated:\n%s", got)
	}
	// No title line when title empty.
	if strings.HasPrefix(got, "\n") {
		t.Errorf("leading blank line:\n%q", got)
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("aaaa", "b")
	tb.AddRow("c", "dddd")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// The second column must start at the same offset in both rows.
	off1 := strings.Index(lines[2], "b")
	off2 := strings.Index(lines[3], "dddd")
	if off1 != off2 {
		t.Errorf("column misaligned: %d vs %d\n%s", off1, off2, tb)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{3, 1, 2})
	if s.Count != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summary")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuantile(t *testing.T) {
	ds := []time.Duration{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	// Nearest-rank: index ⌈q·n⌉−1, so p50 of 10 samples is the 5th value
	// and p90 the 9th — the maximum is reached only at q = 1 (or when
	// ⌈q·n⌉ = n, as for p99 here).
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 10}, {0.5, 50}, {0.9, 90}, {0.99, 100}, {1, 100}, {-1, 10}, {2, 100},
	}
	for _, c := range cases {
		if got := Quantile(ds, c.q); got != c.want {
			t.Errorf("Quantile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
}

func TestSummarizeDurations(t *testing.T) {
	if s := SummarizeDurations(nil); s != (LatencySummary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	// Deliberately unsorted input; it must not be mutated.
	ds := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	s := SummarizeDurations(ds)
	if ds[0] != 30*time.Millisecond {
		t.Fatal("input slice was mutated")
	}
	if s.Count != 3 || s.Min != 10*time.Millisecond || s.Max != 30*time.Millisecond ||
		s.Mean != 20*time.Millisecond || s.P50 != 20*time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
