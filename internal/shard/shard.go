package shard

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"indulgence/internal/journal"
	"indulgence/internal/metrics"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// Config describes a sharded single-process runtime.
type Config struct {
	// Service is the per-group service template: every group runs a
	// service.Service with this configuration. Its Group, Groups and
	// Journal fields must be zero — the runtime assigns the first two
	// and opens a per-group journal itself when JournalDir is set. A
	// Metrics registry on the template is shared by every group: each
	// group's series carry its own group label, the shared muxes count
	// frames once for the whole runtime, and per-group journals register
	// their entry counters group-labelled too.
	Service service.Config
	// Groups is the number of consensus groups (default 1).
	Groups int
	// Placement routes proposals to groups (default round-robin).
	Placement Policy
	// JournalDir, when non-empty, gives every group a durable journal
	// in its own subdirectory (see GroupDir). Empty runs without
	// durability.
	JournalDir string
	// JournalOptions configures every group's journal.
	JournalOptions journal.Options
}

// GroupDir returns the journal directory of one group under a runtime's
// journal root. The layout is stable — restart recovery and the offline
// cross-group audit (check.Replay over every group's entries) both
// address journals through it.
func GroupDir(root string, group int) string {
	return filepath.Join(root, fmt.Sprintf("group-%04d", group))
}

// Runtime is the sharded single-process runtime: G service.Service
// groups over one shared set of muxes, with the placement router in
// front. It satisfies the same Propose/Snapshot/Close surface the
// single-group service offers, so callers (the CLI's serve and
// bench-service paths) treat one group and many uniformly.
type Runtime struct {
	groups   []*service.Service
	journals []*journal.Journal
	muxes    []*transport.Mux
	policy   Policy
	views    []Group
	seq      atomic.Uint64
	closed   atomic.Bool
}

// New starts a sharded runtime over one transport endpoint per process
// (endpoints[i] must answer Self() == i+1). The endpoints stay owned by
// the caller; the runtime wraps each in a group-aware mux shared by all
// its groups and owns all reads from it.
func New(cfg Config, endpoints []transport.Transport) (*Runtime, error) {
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	if cfg.Groups < 1 {
		return nil, fmt.Errorf("shard: need at least 1 group, got %d", cfg.Groups)
	}
	if cfg.Service.Group != 0 || cfg.Service.Groups != 0 || cfg.Service.Journal != nil {
		return nil, errors.New("shard: the service template's Group, Groups and Journal must be unset")
	}
	if cfg.Placement == nil {
		cfg.Placement = NewRoundRobin()
	}
	for i, ep := range endpoints {
		if ep.Self() != model.ProcessID(i+1) {
			return nil, fmt.Errorf("shard: endpoint %d answers Self()=%d", i+1, ep.Self())
		}
	}
	r := &Runtime{
		muxes:  make([]*transport.Mux, len(endpoints)),
		policy: cfg.Placement,
	}
	for i, ep := range endpoints {
		r.muxes[i] = transport.NewMux(ep)
	}
	if reg := cfg.Service.Metrics; reg != nil {
		// The muxes are shared by every group, so their frame counters
		// are runtime-wide (no group label) — a frame is counted once,
		// not once per group.
		fin := reg.Counter("indulgence_frames_in_total",
			"well-formed inbound frames routed or buffered by the shared muxes")
		fout := reg.Counter("indulgence_frames_out_total",
			"frames sent through the shared muxes' virtual endpoints")
		for _, m := range r.muxes {
			m.Instrument(fin, fout)
		}
	}
	for g := 0; g < cfg.Groups; g++ {
		svcCfg := cfg.Service
		svcCfg.Group = uint64(g)
		svcCfg.Groups = cfg.Groups
		if cfg.JournalDir != "" {
			jo := cfg.JournalOptions
			if cfg.Service.Metrics != nil && jo.Metrics == nil {
				jo.Metrics = cfg.Service.Metrics
				jo.MetricsLabels = []metrics.Label{{Key: "group", Value: strconv.Itoa(g)}}
			}
			j, err := journal.Open(GroupDir(cfg.JournalDir, g), jo)
			if err != nil {
				r.teardown()
				return nil, fmt.Errorf("shard: open group %d journal: %w", g, err)
			}
			r.journals = append(r.journals, j)
			svcCfg.Journal = j
		}
		svc, err := service.NewOnMuxes(svcCfg, r.muxes)
		if err != nil {
			r.teardown()
			return nil, fmt.Errorf("shard: start group %d: %w", g, err)
		}
		r.groups = append(r.groups, svc)
		r.views = append(r.views, svc)
	}
	return r, nil
}

// teardown unwinds a partially constructed runtime.
func (r *Runtime) teardown() {
	for _, svc := range r.groups {
		_ = svc.Close()
	}
	for _, m := range r.muxes {
		_ = m.Close()
	}
	for _, j := range r.journals {
		_ = j.Close()
	}
}

// Groups returns the number of consensus groups.
func (r *Runtime) Groups() int { return len(r.groups) }

// Policy returns the placement policy's name.
func (r *Runtime) Policy() string { return r.policy.Name() }

// Group returns one group's service — the per-group escape hatch the
// tests and the chaos harness use to address a specific group.
func (r *Runtime) Group(g int) *service.Service { return r.groups[g] }

// Journals returns the per-group journals, indexed by group ID (empty
// when the runtime was built without a JournalDir).
func (r *Runtime) Journals() []*journal.Journal { return r.journals }

// Propose routes a proposal to a group under the placement policy and
// enqueues it there. Proposals without a natural key use an internal
// sequence number, so affinity policies still spread them.
func (r *Runtime) Propose(ctx context.Context, v model.Value) (*service.Future, error) {
	return r.ProposeKey(ctx, r.seq.Add(1)-1, v)
}

// ProposeKey routes a proposal by its routing key: affinity placement
// sends every proposal of one key through one group's batcher (ordering
// everything about the key), other policies ignore the key.
func (r *Runtime) ProposeKey(ctx context.Context, key uint64, v model.Value) (*service.Future, error) {
	return r.ProposeKeyClass(ctx, key, 0, v)
}

// ProposeClass routes a classed proposal under the placement policy,
// keyed by the internal sequence like Propose.
func (r *Runtime) ProposeClass(ctx context.Context, class int, v model.Value) (*service.Future, error) {
	return r.ProposeKeyClass(ctx, r.seq.Add(1)-1, class, v)
}

// ProposeKeyClass routes a proposal by key at an SLO class — the full
// submission surface. The class gates admission in the chosen group
// (see service.ProposeClass) after placement: routing is class-blind,
// so a high-class proposal still lands on its key's group rather than
// shopping for an unshedding one.
func (r *Runtime) ProposeKeyClass(ctx context.Context, key uint64, class int, v model.Value) (*service.Future, error) {
	if r.closed.Load() {
		return nil, service.ErrClosed
	}
	return r.groups[r.policy.Pick(key, r.views)].ProposeClass(ctx, class, v)
}

// Lookup serves the journaled decision of an already-decided instance
// from whichever group owns it (the strided allocation makes the owner
// computable, not searchable-for).
func (r *Runtime) Lookup(instance uint64) (service.Decision, bool) {
	return r.groups[instance%uint64(len(r.groups))].Lookup(instance)
}

// Rollup is a point-in-time snapshot across every group: the per-group
// service snapshots plus the aggregate counters the bench and smoke
// paths assert on.
type Rollup struct {
	// Groups holds each group's service snapshot, indexed by group ID.
	Groups []service.Stats
	// Proposals, Resolved, Failed, Instances, InstanceFailures and
	// Overloads are the sums of the per-group counters.
	Proposals, Resolved, Failed int
	Instances, InstanceFailures int
	Overloads                   int
	// OverloadsByClass and ResolvedByClass are the per-SLO-class sums
	// across groups, indexed by class and sized to the highest class any
	// group saw (nil when every group ran classless).
	OverloadsByClass []int
	ResolvedByClass  []int
	// Violations collects every group's consensus-property violations,
	// each prefixed with its group ("group 3: instance 7: ...").
	Violations []string
}

// Snapshot returns the cross-group rollup.
func (r *Runtime) Snapshot() Rollup {
	views := make([]groupStats, len(r.groups))
	for i, svc := range r.groups {
		views[i] = svc
	}
	return rollup(views)
}

// groupStats is the snapshot surface both service shapes share.
type groupStats interface{ Snapshot() service.Stats }

// rollup aggregates per-group snapshots; both runtime shapes share it.
func rollup(groups []groupStats) Rollup {
	var out Rollup
	for g, svc := range groups {
		st := svc.Snapshot()
		out.Groups = append(out.Groups, st)
		out.Proposals += st.Proposals
		out.Resolved += st.Resolved
		out.Failed += st.Failed
		out.Instances += st.Instances
		out.InstanceFailures += st.InstanceFailures
		out.Overloads += st.Overloads
		out.OverloadsByClass = addByClass(out.OverloadsByClass, st.OverloadsByClass)
		out.ResolvedByClass = addByClass(out.ResolvedByClass, st.ResolvedByClass)
		for _, v := range st.Violations {
			out.Violations = append(out.Violations, fmt.Sprintf("group %d: %s", g, v))
		}
	}
	return out
}

// addByClass accumulates one group's per-class counters into the
// rollup's, growing the slice to the widest class seen.
func addByClass(sum, add []int) []int {
	for len(sum) < len(add) {
		sum = append(sum, 0)
	}
	for c, v := range add {
		sum[c] += v
	}
	return sum
}

// Close stops every group (flushing pending batches and waiting for
// inflight instances), then the shared muxes, then the journals. The
// endpoints stay with the caller. Idempotent.
func (r *Runtime) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for _, svc := range r.groups {
		if err := svc.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, m := range r.muxes {
		_ = m.Close()
	}
	for _, j := range r.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Abort hard-stops every group without flushing — the crash shutdown
// shape, recoverable only through the journals (see service.Abort).
// Journals are closed so a successor runtime can take the directories
// over; records already durable survive.
func (r *Runtime) Abort() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	for _, svc := range r.groups {
		svc.Abort()
	}
	for _, m := range r.muxes {
		_ = m.Close()
	}
	for _, j := range r.journals {
		_ = j.Close()
	}
}

// ReplayDir replays every group journal under a runtime's journal root
// (the GroupDir layout) into one decision-record and start-claim
// stream, in ascending group order — the input shape check.Replay
// audits: feeding all groups of one member to a single Replay call is
// exactly what arms its cross-group instance-ID audit. Group
// directories that do not exist are skipped (a fresh member may not
// have journaled every group yet).
func ReplayDir(root string, groups int) (records []wire.DecisionRecord, starts []wire.StartRecord, err error) {
	for g := 0; g < groups; g++ {
		dir := GroupDir(root, g)
		_, err := journal.Replay(dir, func(e journal.Entry) error {
			switch {
			case e.Trace != nil:
				// Decision-trace entries are introspection context,
				// not claims or outcomes; the consensus audit skips
				// them.
			case e.Start:
				starts = append(starts, wire.StartRecord{
					Instance: e.Decision.Instance, Alg: e.Alg, Group: e.Decision.Group})
			default:
				records = append(records, e.Decision)
			}
			return nil
		})
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, nil, fmt.Errorf("shard: replay group %d: %w", g, err)
		}
	}
	return records, starts, nil
}
