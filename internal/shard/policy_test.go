package shard

import (
	"math/rand"
	"testing"
)

// fakeGroup is a policy-visible group with scripted load.
type fakeGroup struct {
	id       uint64
	used     int
	capacity int
	shedding bool
}

func (g fakeGroup) Group() uint64         { return g.id }
func (g fakeGroup) Occupancy() (int, int) { return g.used, g.capacity }
func (g fakeGroup) Shedding() bool        { return g.shedding }
func asGroups(fs []fakeGroup) (out []Group) {
	for _, f := range fs {
		out = append(out, f)
	}
	return out
}

// TestRoundRobinPermutation pins the rotation property: any window of
// G*k consecutive picks is k exact passes over the groups — every group
// index appears exactly k times, regardless of where the window starts
// (the counter survives across windows).
func TestRoundRobinPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := 1 + rng.Intn(8)
		groups := make([]fakeGroup, g)
		for i := range groups {
			groups[i] = fakeGroup{id: uint64(i), capacity: 1}
		}
		views := asGroups(groups)
		p := NewRoundRobin()
		// Skew the window start by a random prefix of picks.
		for skip := rng.Intn(3 * g); skip > 0; skip-- {
			p.Pick(rng.Uint64(), views)
		}
		k := 1 + rng.Intn(5)
		counts := make([]int, g)
		for i := 0; i < g*k; i++ {
			idx := p.Pick(rng.Uint64(), views)
			if idx < 0 || idx >= g {
				t.Fatalf("trial %d: pick %d out of range [0,%d)", trial, idx, g)
			}
			counts[idx]++
		}
		for i, c := range counts {
			if c != k {
				t.Fatalf("trial %d: group %d picked %d times in a %d*%d window, want %d",
					trial, i, c, g, k, k)
			}
		}
	}
}

// TestKeyAffinityStable pins the affinity property: the picked group
// depends only on (key, group-ID set) — equal sets in any order place
// one key on one group ID, across calls and across fresh policy values.
func TestKeyAffinityStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		g := 1 + rng.Intn(8)
		groups := make([]fakeGroup, g)
		for i := range groups {
			// Non-contiguous IDs: stability must track the IDs, not the
			// slice positions.
			groups[i] = fakeGroup{id: uint64(i*3 + rng.Intn(2)), used: rng.Intn(10), capacity: 10}
		}
		views := asGroups(groups)
		shuffled := append([]Group(nil), views...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		p, q := NewKeyAffinity(), NewKeyAffinity()
		for i := 0; i < 100; i++ {
			key := rng.Uint64()
			want := views[p.Pick(key, views)].Group()
			if got := views[p.Pick(key, views)].Group(); got != want {
				t.Fatalf("trial %d: key %d moved %d -> %d across calls", trial, key, want, got)
			}
			if got := shuffled[q.Pick(key, shuffled)].Group(); got != want {
				t.Fatalf("trial %d: key %d moved %d -> %d under reordering", trial, key, want, got)
			}
		}
	}
}

// TestKeyAffinityMinimalDisruption checks the rendezvous bonus: removing
// one group only moves the keys that lived on it.
func TestKeyAffinityMinimalDisruption(t *testing.T) {
	full := asGroups([]fakeGroup{{id: 0}, {id: 1}, {id: 2}, {id: 3}})
	without := asGroups([]fakeGroup{{id: 0}, {id: 1}, {id: 3}})
	p := NewKeyAffinity()
	for key := uint64(0); key < 500; key++ {
		before := full[p.Pick(key, full)].Group()
		after := without[p.Pick(key, without)].Group()
		if before != 2 && after != before {
			t.Fatalf("key %d moved %d -> %d though its group survived", key, before, after)
		}
	}
}

// TestLeastLoadedAvoidsShedding pins the routing-around property: as
// long as any non-shedding group exists, a shedding group is never
// picked — whatever the occupancies — and with every group shedding the
// pick falls back to the least occupied overall.
func TestLeastLoadedAvoidsShedding(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := NewLeastLoaded()
	for trial := 0; trial < 200; trial++ {
		g := 1 + rng.Intn(8)
		groups := make([]fakeGroup, g)
		anyOpen := false
		for i := range groups {
			groups[i] = fakeGroup{
				id:       uint64(i),
				used:     rng.Intn(16),
				capacity: 1 + rng.Intn(16),
				shedding: rng.Intn(2) == 0,
			}
			if !groups[i].shedding {
				anyOpen = true
			}
		}
		views := asGroups(groups)
		idx := p.Pick(rng.Uint64(), views)
		if idx < 0 || idx >= g {
			t.Fatalf("trial %d: pick %d out of range [0,%d)", trial, idx, g)
		}
		if anyOpen && groups[idx].shedding {
			t.Fatalf("trial %d: picked shedding group %d while a non-shedding group exists (%+v)",
				trial, idx, groups)
		}
	}
}

// TestLeastLoadedPicksLightest checks the load comparison itself:
// among non-shedding groups the smallest occupancy fraction wins, with
// ties to the lower index.
func TestLeastLoadedPicksLightest(t *testing.T) {
	p := NewLeastLoaded()
	groups := asGroups([]fakeGroup{
		{id: 0, used: 5, capacity: 10},
		{id: 1, used: 1, capacity: 10},
		{id: 2, used: 3, capacity: 10, shedding: true},
		{id: 3, used: 1, capacity: 10},
	})
	if idx := p.Pick(0, groups); idx != 1 {
		t.Fatalf("picked %d, want 1 (lightest non-shedding, lower-index tie-break)", idx)
	}
	// Differing capacities compare as fractions: 2/100 < 1/10.
	groups = asGroups([]fakeGroup{
		{id: 0, used: 1, capacity: 10},
		{id: 1, used: 2, capacity: 100},
	})
	if idx := p.Pick(0, groups); idx != 1 {
		t.Fatalf("picked %d, want 1 (2%% beats 10%%)", idx)
	}
	// All shedding: fall back to the lightest overall.
	groups = asGroups([]fakeGroup{
		{id: 0, used: 9, capacity: 10, shedding: true},
		{id: 1, used: 2, capacity: 10, shedding: true},
	})
	if idx := p.Pick(0, groups); idx != 1 {
		t.Fatalf("picked %d, want 1 (lightest when all shed)", idx)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"round-robin", "least-loaded", "key-affinity"} {
		p, err := ParsePolicy(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p.Name() != "round-robin" {
		t.Fatalf("empty name = %v, %v; want round-robin", p, err)
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
