package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/transport"
)

// PeerConfig describes one process's member of a sharded multi-process
// cluster.
type PeerConfig struct {
	// Peer is the per-group member template: every group runs a
	// service.PeerService with this configuration. Its Group, Groups
	// and Journal fields must be zero — the runtime assigns the first
	// two and opens per-group journals itself when JournalDir is set.
	Peer service.PeerOptions
	// Groups is the number of consensus groups (default 1). Every
	// member of the cluster must agree on it — a slot's owning group is
	// slot mod Groups on every member.
	Groups int
	// Placement routes local proposals to groups (default round-robin).
	// Members may differ here; placement only decides where a proposal
	// enters, and any member joins any group's slot on the wire signal.
	Placement Policy
	// JournalDir, when non-empty, gives every group member a durable
	// journal under its own subdirectory (see GroupDir); the directory
	// is this member's own — members never share journals.
	JournalDir string
	// JournalOptions configures every group's journal.
	JournalOptions journal.Options
}

// PeerRuntime is one process's sharded cluster member: G
// service.PeerService group members over a single shared group-aware
// mux. The runtime owns the mux's pending callback and routes each
// (group, instance) join signal to the group member that owns it, so a
// proposal entering any member reaches every member's matching group.
type PeerRuntime struct {
	groups   []*service.PeerService
	journals []*journal.Journal
	mux      *transport.Mux
	policy   Policy
	views    []Group
	seq      atomic.Uint64
	closed   atomic.Bool

	// joinMu orders early join signals against construction: the mux
	// starts routing (and signalling) the moment it exists, before the
	// group members do, so signals arriving in the window buffer in
	// backlog and flush once every member is up.
	joinMu  sync.Mutex
	ready   bool
	backlog [][2]uint64
}

// joinBacklog bounds the pre-ready backlog. Signals beyond it drop
// harmlessly: a join signal re-fires on the slot's next inbound frame.
const joinBacklog = 1024

// NewPeer starts one sharded member of an n-process cluster over its
// transport endpoint. The endpoint stays owned by the caller; the
// runtime wraps it in one group-aware mux shared by all its group
// members and owns all reads from it.
func NewPeer(cfg PeerConfig, n int, ep transport.Transport) (*PeerRuntime, error) {
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	if cfg.Groups < 1 {
		return nil, fmt.Errorf("shard: need at least 1 group, got %d", cfg.Groups)
	}
	if cfg.Peer.Group != 0 || cfg.Peer.Groups != 0 || cfg.Peer.Journal != nil {
		return nil, fmt.Errorf("shard: the peer template's Group, Groups and Journal must be unset")
	}
	if cfg.Placement == nil {
		cfg.Placement = NewRoundRobin()
	}
	r := &PeerRuntime{policy: cfg.Placement}
	r.mux = transport.NewMuxGroupNotify(ep, r.dispatch)
	for g := 0; g < cfg.Groups; g++ {
		peerCfg := cfg.Peer
		peerCfg.Group = uint64(g)
		peerCfg.Groups = cfg.Groups
		if cfg.JournalDir != "" {
			j, err := journal.Open(GroupDir(cfg.JournalDir, g), cfg.JournalOptions)
			if err != nil {
				r.teardown()
				return nil, fmt.Errorf("shard: open group %d journal: %w", g, err)
			}
			r.journals = append(r.journals, j)
			peerCfg.Journal = j
		}
		svc, err := service.NewPeerOnMux(peerCfg, n, r.mux)
		if err != nil {
			r.teardown()
			return nil, fmt.Errorf("shard: start group %d: %w", g, err)
		}
		r.groups = append(r.groups, svc)
		r.views = append(r.views, svc)
	}
	r.joinMu.Lock()
	r.ready = true
	backlog := r.backlog
	r.backlog = nil
	r.joinMu.Unlock()
	for _, sig := range backlog {
		r.deliver(sig[0], sig[1])
	}
	return r, nil
}

// dispatch is the shared mux's pending callback: route the join signal
// to the owning group member, or buffer it while construction is still
// assembling the members. Runs on the mux router goroutine — it must
// never block, and deliver only does a non-blocking channel send.
func (r *PeerRuntime) dispatch(group, instance uint64) {
	r.joinMu.Lock()
	if !r.ready {
		if len(r.backlog) < joinBacklog {
			r.backlog = append(r.backlog, [2]uint64{group, instance})
		}
		r.joinMu.Unlock()
		return
	}
	r.joinMu.Unlock()
	r.deliver(group, instance)
}

// deliver hands one join signal to its group member. Signals for groups
// this member does not run (a peer misconfigured with more groups) are
// dropped — the member cannot join a group it has no service for.
func (r *PeerRuntime) deliver(group, instance uint64) {
	if group < uint64(len(r.groups)) {
		r.groups[group].Join(instance)
	}
}

// teardown unwinds a partially constructed runtime.
func (r *PeerRuntime) teardown() {
	for _, svc := range r.groups {
		_ = svc.Close()
	}
	_ = r.mux.Close()
	for _, j := range r.journals {
		_ = j.Close()
	}
}

// Self returns this member's process ID.
func (r *PeerRuntime) Self() model.ProcessID { return r.mux.Self() }

// Groups returns the number of consensus groups.
func (r *PeerRuntime) Groups() int { return len(r.groups) }

// Policy returns the placement policy's name.
func (r *PeerRuntime) Policy() string { return r.policy.Name() }

// Group returns one group's member service.
func (r *PeerRuntime) Group(g int) *service.PeerService { return r.groups[g] }

// Journals returns the per-group journals, indexed by group ID (empty
// when the member was built without a JournalDir).
func (r *PeerRuntime) Journals() []*journal.Journal { return r.journals }

// Propose routes a local proposal to a group under the placement policy.
func (r *PeerRuntime) Propose(ctx context.Context, v model.Value) (*service.Future, error) {
	return r.ProposeKey(ctx, r.seq.Add(1)-1, v)
}

// ProposeKey routes a local proposal by its routing key.
func (r *PeerRuntime) ProposeKey(ctx context.Context, key uint64, v model.Value) (*service.Future, error) {
	if r.closed.Load() {
		return nil, service.ErrClosed
	}
	return r.groups[r.policy.Pick(key, r.views)].Propose(ctx, v)
}

// Lookup serves the journaled decision of an already-decided instance
// from the group that owns its ID.
func (r *PeerRuntime) Lookup(instance uint64) (service.Decision, bool) {
	return r.groups[instance%uint64(len(r.groups))].Lookup(instance)
}

// Snapshot returns the cross-group rollup of this member's groups.
func (r *PeerRuntime) Snapshot() Rollup {
	views := make([]groupStats, len(r.groups))
	for i, svc := range r.groups {
		views[i] = svc
	}
	return rollup(views)
}

// Close stops every group member, then the shared mux, then the
// journals. The endpoint stays with the caller. Idempotent.
func (r *PeerRuntime) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for _, svc := range r.groups {
		if err := svc.Close(); err != nil && first == nil {
			first = err
		}
	}
	_ = r.mux.Close()
	for _, j := range r.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Abort hard-stops every group member without flushing — the crash
// shutdown shape the kill/restart tests use (see service.Abort).
func (r *PeerRuntime) Abort() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	for _, svc := range r.groups {
		svc.Abort()
	}
	_ = r.mux.Close()
	for _, j := range r.journals {
		_ = j.Close()
	}
}
