// Package shard is the multi-group runtime: it runs G independent
// consensus groups — each with its own strided slice of the instance-ID
// space, its own journal directory and its own adaptive control plane —
// multiplexed over one shared set of transport muxes, with a router in
// front that places each proposal on a group under a pluggable policy.
//
// The paper's price of indulgence is a per-instance quantity: every
// instance pays its t+2 round floor no matter what. Sharding does not
// lower that price; it buys aggregate throughput by paying it on G
// instances concurrently — groups share the physical connections but
// nothing else, so one group's slow instance (an injected partition, a
// crashed member) never holds another group's batches. The group-aware
// wire envelope keeps the groups' frames apart on the shared transport,
// and the strided allocation keeps their instance IDs globally unique,
// which is what lets check.Replay audit all group journals of a member
// in one pass and call any instance ID seen under two groups a
// violation.
package shard

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Group is the load view a placement policy sees of one consensus
// group. Both service shapes satisfy it (service.Service and
// service.PeerService).
type Group interface {
	// Group returns the group's consensus group number.
	Group() uint64
	// Occupancy reports the group's intake-buffer fill and capacity.
	Occupancy() (used, capacity int)
	// Shedding reports whether the group's admission gate is currently
	// rejecting proposals with adapt.ErrOverload.
	Shedding() bool
}

// Policy places proposals on groups. Pick returns an index into groups
// (which the router passes in ascending group-ID order, and which is
// never empty); implementations must be safe for concurrent use — the
// router calls Pick from every proposer goroutine.
type Policy interface {
	// Name identifies the policy ("round-robin", "least-loaded",
	// "key-affinity").
	Name() string
	// Pick chooses the group for a proposal. key is the proposal's
	// routing key: an affinity policy sends equal keys to equal groups;
	// load- and rotation-based policies may ignore it.
	Pick(key uint64, groups []Group) int
}

// NewRoundRobin returns the rotation policy: successive picks cycle
// through the groups in order, so any window of len(groups)*k
// consecutive picks places exactly k proposals on every group. The key
// is ignored.
func NewRoundRobin() Policy { return &roundRobin{} }

type roundRobin struct{ next atomic.Uint64 }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Pick(_ uint64, groups []Group) int {
	return int((p.next.Add(1) - 1) % uint64(len(groups)))
}

// NewLeastLoaded returns the load-balancing policy: each pick goes to
// the group with the smallest intake occupancy fraction, skipping
// groups whose admission gate is shedding as long as any non-shedding
// group exists (a shedding group is telling its clients to back off;
// routing fresh load at it while a sibling has room would manufacture
// ErrOverload). Ties break to the lower group index. When every group
// is shedding there is nothing to route around, and the least-occupied
// group overall is picked. The key is ignored.
func NewLeastLoaded() Policy { return leastLoaded{} }

type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(_ uint64, groups []Group) int {
	best := -1
	var bestUsed, bestCap int
	// lighter reports whether occupancy used/capacity is strictly below
	// the best so far, by integer cross-multiplication (capacities can
	// differ when control planes grew different intake ceilings).
	lighter := func(used, capacity int) bool {
		if best < 0 {
			return true
		}
		return used*bestCap < bestUsed*capacity
	}
	pass := func(includeShedding bool) {
		for i, g := range groups {
			if !includeShedding && g.Shedding() {
				continue
			}
			if used, capacity := g.Occupancy(); lighter(used, capacity) {
				best, bestUsed, bestCap = i, used, capacity
			}
		}
	}
	pass(false)
	if best < 0 {
		pass(true)
	}
	return best
}

// NewKeyAffinity returns the affinity policy: rendezvous (highest-
// random-weight) hashing over (key, group ID), so one key always lands
// on one group as long as the group set is equal — and when the set
// changes, only the keys whose winning group left move. Affinity is the
// policy for workloads whose proposals are ordered per key: everything
// about a key serializes through one group's batcher.
func NewKeyAffinity() Policy { return keyAffinity{} }

type keyAffinity struct{}

func (keyAffinity) Name() string { return "key-affinity" }

func (keyAffinity) Pick(key uint64, groups []Group) int {
	best, bestWeight := 0, uint64(0)
	for i, g := range groups {
		if w := rendezvous(key, g.Group()); i == 0 || w > bestWeight {
			best, bestWeight = i, w
		}
	}
	return best
}

// rendezvous is the weight of placing key on group: FNV-1a over both
// IDs in fixed-width big-endian.
func rendezvous(key, group uint64) uint64 {
	h := fnv.New64a()
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(key >> (56 - 8*i))
		b[8+i] = byte(group >> (56 - 8*i))
	}
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// ParsePolicy maps a CLI policy name to its Policy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "round-robin", "":
		return NewRoundRobin(), nil
	case "least-loaded":
		return NewLeastLoaded(), nil
	case "key-affinity":
		return NewKeyAffinity(), nil
	default:
		return nil, fmt.Errorf("shard: unknown placement policy %q (want round-robin, least-loaded or key-affinity)", name)
	}
}
