package shard_test

import (
	"context"
	"testing"
	"time"

	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/shard"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// hubEndpoints builds one hub and returns its endpoints.
func hubEndpoints(t *testing.T, n int) []transport.Transport {
	t.Helper()
	hub, err := transport.NewHub(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	eps := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	return eps
}

func runtimeConfig(groups int) shard.Config {
	return shard.Config{
		Service: service.Config{
			N: 3, T: 1,
			Factory:     core.New(core.Options{}),
			BaseTimeout: 20 * time.Millisecond,
			Linger:      time.Millisecond,
		},
		Groups:         groups,
		JournalOptions: journal.Options{NoSync: true},
	}
}

// TestRuntimeShardsDisjoint drives proposals through a multi-group
// runtime and checks the contract the whole design rests on: every
// group resolves its proposals, and the decided instance IDs of
// different groups live in disjoint strided spaces.
func TestRuntimeShardsDisjoint(t *testing.T) {
	const groups = 3
	rt, err := shard.New(runtimeConfig(groups), hubEndpoints(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Groups() != groups || rt.Policy() != "round-robin" {
		t.Fatalf("runtime = %d groups, %q policy", rt.Groups(), rt.Policy())
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	const total = 24
	futs := make([]*service.Future, 0, total)
	for i := 0; i < total; i++ {
		f, err := rt.Propose(ctx, model.Value(100+i))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		dec, err := f.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Batch < 1 {
			t.Fatalf("impossible batch %d", dec.Batch)
		}
	}

	roll := rt.Snapshot()
	if roll.Proposals != total || roll.Resolved != total {
		t.Fatalf("rollup proposals/resolved = %d/%d, want %d/%d",
			roll.Proposals, roll.Resolved, total, total)
	}
	if len(roll.Violations) != 0 {
		t.Fatalf("violations: %v", roll.Violations)
	}
	// Round-robin touched every group.
	for g, st := range roll.Groups {
		if st.Proposals == 0 {
			t.Fatalf("group %d saw no proposals under round-robin", g)
		}
	}
}

// TestRuntimeJournalRecovery is the cross-group restart audit: a
// journaled multi-group runtime is aborted mid-life and restarted on
// the same directory tree; the successor must resume every group past
// its own frontier (no instance ID re-used, in any group), and the
// offline replay of all group journals together must pass check.Replay
// — including its cross-group instance audit.
func TestRuntimeJournalRecovery(t *testing.T) {
	const groups = 3
	dir := t.TempDir()
	live := make(map[uint64]model.Value)

	run := func(base int) {
		cfg := runtimeConfig(groups)
		cfg.JournalDir = dir
		rt, err := shard.New(cfg, hubEndpoints(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		var futs []*service.Future
		for i := 0; i < 12; i++ {
			f, err := rt.Propose(ctx, model.Value(base+i))
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		for _, f := range futs {
			dec, err := f.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := live[dec.Instance]; ok && prev != dec.Value {
				t.Fatalf("instance %d resolved %d and later %d", dec.Instance, prev, dec.Value)
			}
			live[dec.Instance] = dec.Value
		}
		// Abort, not Close: restart recovery must work from the crash
		// shutdown shape.
		rt.Abort()
	}
	run(1000)
	run(2000) // the successor lifetime, recovering per-group frontiers

	records, starts, err := shard.ReplayDir(dir, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 || len(starts) == 0 {
		t.Fatalf("replayed %d records, %d starts", len(records), len(starts))
	}
	perGroup := make(map[uint64]int)
	for _, r := range records {
		if r.Instance%groups != r.Group {
			t.Fatalf("instance %d journaled under group %d (not its residue class)", r.Instance, r.Group)
		}
		perGroup[r.Group]++
	}
	if len(perGroup) != groups {
		t.Fatalf("decisions landed in %d groups, want %d", len(perGroup), groups)
	}
	if rep := check.Replay(records, starts, live); !rep.OK() {
		t.Fatalf("cross-group replay audit failed: %v", rep.Violations)
	}
}

// TestReplayDirFlagsCrossGroupInstance plants the violation the audit
// exists to catch: one instance ID journaled by two different groups.
// The strided allocation makes this impossible for a correct runtime,
// so check.Replay over the combined stream must flag it.
func TestReplayDirFlagsCrossGroupInstance(t *testing.T) {
	dir := t.TempDir()
	for g, rec := range []wire.DecisionRecord{
		{Instance: 5, Value: 7, Round: 3, Batch: 1, Group: 0},
		{Instance: 5, Value: 7, Round: 3, Batch: 1, Group: 1},
	} {
		j, err := journal.Open(shard.GroupDir(dir, g), journal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	records, starts, err := shard.ReplayDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := check.Replay(records, starts, nil)
	if rep.Agreement {
		t.Fatalf("cross-group instance not flagged: %+v", rep)
	}
}

// TestPeerRuntimeMultiGroup runs a 3-member sharded cluster in one
// process over a shared hub: proposals enter different members under
// key-affinity placement, every member's matching group joins, and all
// members resolve each key's instances identically.
func TestPeerRuntimeMultiGroup(t *testing.T) {
	const n, groups = 3, 2
	eps := hubEndpoints(t, n)
	members := make([]*shard.PeerRuntime, n)
	for i := 0; i < n; i++ {
		cfg := shard.PeerConfig{
			Peer: service.PeerOptions{
				T:           1,
				Factory:     core.New(core.Options{}),
				BaseTimeout: 20 * time.Millisecond,
				Linger:      time.Millisecond,
				FloodGrace:  50 * time.Millisecond,
			},
			Groups:    groups,
			Placement: shard.NewKeyAffinity(),
		}
		m, err := shard.NewPeer(cfg, n, eps[i])
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
		defer m.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	type tagged struct {
		fut  *service.Future
		from int
	}
	var futs []tagged
	for i := 0; i < 12; i++ {
		member := members[i%n]
		f, err := member.ProposeKey(ctx, uint64(i%4), model.Value(500+i))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, tagged{f, i % n})
	}
	resolved := make(map[uint64]model.Value)
	for _, tf := range futs {
		dec, err := tf.fut.Wait(ctx)
		if err != nil {
			t.Fatalf("member %d: %v", tf.from, err)
		}
		if prev, ok := resolved[dec.Instance]; ok && prev != dec.Value {
			t.Fatalf("instance %d resolved %d and %d", dec.Instance, prev, dec.Value)
		}
		resolved[dec.Instance] = dec.Value
	}
	for _, m := range members {
		if roll := m.Snapshot(); len(roll.Violations) != 0 {
			t.Fatalf("member %d violations: %v", m.Self(), roll.Violations)
		}
	}
}
