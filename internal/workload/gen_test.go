package workload

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// sampleStats draws n inter-arrival gaps from one stream and returns
// their sample mean and coefficient of variation.
func sampleStats(s *Spec, cohort int, c Cohort, n int) (mean, cv float64) {
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := interArrival(s, cohort, c, 0, i)
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

// TestArrivalProcessMoments pins the generator's distributions: across
// 100 seeds, every process's sample mean must sit near 1/rate and its
// sample CV near the distribution's analytic value — Poisson CV 1,
// Erlang-k CV 1/√k, Weibull-k CV from the gamma-function formula. The
// cross-seed averages must be tighter still, so a systematically biased
// sampler cannot hide inside the per-seed tolerance.
func TestArrivalProcessMoments(t *testing.T) {
	const seeds = 100
	const samples = 2000
	cases := []struct {
		name    string
		arrival Arrival
		wantCV  float64
	}{
		{"poisson", Arrival{Process: Poisson, Rate: 50}, 1},
		{"erlang-4", Arrival{Process: Gamma, Rate: 50, Shape: 4}, 0.5},
		{"erlang-16", Arrival{Process: Gamma, Rate: 200, Shape: 16}, 0.25},
		{"weibull-regular", Arrival{Process: Weibull, Rate: 50, Shape: 1.5},
			math.Sqrt(math.Gamma(1+2/1.5)/math.Pow(math.Gamma(1+1/1.5), 2) - 1)},
		{"weibull-bursty", Arrival{Process: Weibull, Rate: 50, Shape: 0.7},
			math.Sqrt(math.Gamma(1+2/0.7)/math.Pow(math.Gamma(1+1/0.7), 2) - 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantMean := 1 / tc.arrival.Rate
			var meanAcc, cvAcc float64
			for seed := int64(1); seed <= seeds; seed++ {
				s := &Spec{Seed: seed}
				c := Cohort{Clients: 1, Arrival: tc.arrival}
				mean, cv := sampleStats(s, 0, c, samples)
				if math.Abs(mean-wantMean) > 0.15*wantMean {
					t.Fatalf("seed %d: mean %g, want %g ±15%%", seed, mean, wantMean)
				}
				if math.Abs(cv-tc.wantCV) > 0.25*tc.wantCV {
					t.Fatalf("seed %d: cv %g, want %g ±25%%", seed, cv, tc.wantCV)
				}
				meanAcc += mean
				cvAcc += cv
			}
			meanAcc /= seeds
			cvAcc /= seeds
			if math.Abs(meanAcc-wantMean) > 0.03*wantMean {
				t.Fatalf("cross-seed mean %g, want %g ±3%%", meanAcc, wantMean)
			}
			if math.Abs(cvAcc-tc.wantCV) > 0.05*tc.wantCV {
				t.Fatalf("cross-seed cv %g, want %g ±5%%", cvAcc, tc.wantCV)
			}
		})
	}
}

// TestEventsDeterministic pins the determinism contract: the same seed
// yields the byte-identical event log no matter how many times, from
// how many goroutines, or at which GOMAXPROCS it is generated — there
// is no PRNG state to perturb.
func TestEventsDeterministic(t *testing.T) {
	spec := GenSpec(7, 0)
	want := EventLog(spec.Events())
	if want == "" {
		t.Fatal("generated no events")
	}
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		logs := make([]string, 8)
		for i := range logs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				logs[i] = EventLog(spec.Events())
			}(i)
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		for i, got := range logs {
			if got != want {
				t.Fatalf("GOMAXPROCS=%d goroutine %d: event log diverged", procs, i)
			}
		}
	}
}

// TestEventsShape sanity-checks the merged sequence: seqs are dense,
// arrivals are time-ordered, idle phases are arrival-free, classes and
// keys respect their cohorts, and values are unique.
func TestEventsShape(t *testing.T) {
	spec := GenSpec(3, 0)
	events := spec.Events()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// GenSpec's schedule: ramp 40ms, burst 60ms, idle 20ms, steady 80ms.
	idleStart, idleEnd := 100*time.Millisecond, 120*time.Millisecond
	values := make(map[int64]bool)
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if i > 0 && e.At < events[i-1].At {
			t.Fatalf("event %d arrives before its predecessor", i)
		}
		if e.At > idleStart && e.At < idleEnd {
			t.Fatalf("event %d arrives at %s inside the idle phase", i, e.At)
		}
		c := spec.Cohorts[e.Cohort]
		if e.Class != c.Class {
			t.Fatalf("event %d class %d, cohort class %d", i, e.Class, c.Class)
		}
		if e.Key >= uint64(c.Keys) {
			t.Fatalf("event %d key %d outside cohort space %d", i, e.Key, c.Keys)
		}
		if e.Payload < c.PayloadMin || e.Payload > c.PayloadMax {
			t.Fatalf("event %d payload %d outside [%d, %d]", i, e.Payload, c.PayloadMin, c.PayloadMax)
		}
		if values[int64(e.Value)] {
			t.Fatalf("event %d reuses value %d", i, e.Value)
		}
		values[int64(e.Value)] = true
	}
}

// TestMaxEventsCap pins that the cap truncates the merged order, not
// per-stream, so capped workloads keep the earliest arrivals.
func TestMaxEventsCap(t *testing.T) {
	full := GenSpec(11, 0)
	capped := *full
	capped.MaxEvents = 10
	fullEvents := full.Events()
	if len(fullEvents) <= 10 {
		t.Skipf("only %d events generated", len(fullEvents))
	}
	got := capped.Events()
	if len(got) != 10 {
		t.Fatalf("capped to %d events, want 10", len(got))
	}
	if EventLog(got) != EventLog(fullEvents[:10]) {
		t.Fatal("capped sequence is not the prefix of the full sequence")
	}
}

// TestGenSpecValid pins that every derived spec validates and stays
// mixed-class across 100 seeds.
func TestGenSpecValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		spec := GenSpec(seed, 256)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if spec.Classes() != 3 {
			t.Fatalf("seed %d: %d classes, want 3", seed, spec.Classes())
		}
		if n := len(spec.Events()); n == 0 || n > 256 {
			t.Fatalf("seed %d: %d events", seed, n)
		}
	}
}

// TestSpecJSONRoundTrip pins the spec's JSON embedding: parse(JSON(s))
// must reproduce the spec and its workload exactly.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := GenSpec(23, 128)
	parsed, err := ParseSpec([]byte(spec.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if EventLog(parsed.Events()) != EventLog(spec.Events()) {
		t.Fatal("JSON round-trip changed the workload")
	}
}

// TestValidateRejects spot-checks the validator's bounds.
func TestValidateRejects(t *testing.T) {
	base := func() *Spec { return GenSpec(1, 0) }
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }},
		{"no phases", func(s *Spec) { s.Phases = nil }},
		{"zero clients", func(s *Spec) { s.Cohorts[0].Clients = 0 }},
		{"class too high", func(s *Spec) { s.Cohorts[0].Class = MaxClasses }},
		{"zero rate", func(s *Spec) { s.Cohorts[0].Arrival.Rate = 0 }},
		{"unknown process", func(s *Spec) { s.Cohorts[0].Arrival.Process = "pareto" }},
		{"fractional erlang shape", func(s *Spec) { s.Cohorts[1].Arrival.Shape = 2.5 }},
		{"negative phase duration", func(s *Spec) { s.Phases[0].Duration = -1 }},
		{"payload bounds inverted", func(s *Spec) { s.Cohorts[0].PayloadMin = 10; s.Cohorts[0].PayloadMax = 5 }},
		{"key space too large", func(s *Spec) { s.Cohorts[0].Keys = MaxKeys + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatal("validator accepted a broken spec")
			}
		})
	}
}
