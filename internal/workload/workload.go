// Package workload is the scenario engine for the live service stack:
// it turns one seed into one fully-determined open-loop workload —
// multi-client cohorts with Poisson, Gamma or Weibull inter-arrival
// processes, per-cohort payload-size and key distributions, SLO
// classes, and phase schedules (ramp, burst, idle) — and defines the
// versioned, CRC-framed trace format that records such a run for
// deterministic replay.
//
// # Determinism contract
//
// Every sample the generator draws is a pure function of (seed, cohort,
// client, event index, salt): a seed-hash roll in the style of the
// chaos injector, with no PRNG state anywhere. One seed therefore is
// one workload — the same Spec produces the byte-identical event
// sequence on any GOMAXPROCS, any platform, any clock (the schedule is
// expressed as offsets from run start, so it drives real and virtual
// clocks alike). The test battery pins this with byte-compares of the
// rendered event log.
package workload

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"indulgence/internal/model"
)

// MaxClasses bounds the SLO classes a spec may use (classes 0..7;
// higher is more important, lower is shed first). It matches
// wire.MaxClassValue+1.
const MaxClasses = 8

// MaxKeys bounds a cohort's key space.
const MaxKeys = 1 << 16

// MaxErlangShape bounds the integer shape of the Gamma process (the
// generator draws Gamma variates as Erlang sums, one roll per stage).
const MaxErlangShape = 64

// Arrival process names.
const (
	// Poisson is the memoryless arrival process (CV = 1).
	Poisson = "poisson"
	// Gamma is the Erlang arrival process: integer shape k ≥ 1 smooths
	// arrivals (CV = 1/√k); shape 1 degenerates to Poisson.
	Gamma = "gamma"
	// Weibull covers both bursty (shape < 1, CV > 1) and regular
	// (shape > 1, CV < 1) arrivals.
	Weibull = "weibull"
)

// Arrival describes one cohort's inter-arrival process. Rate is the
// per-client arrival rate in events per second at phase multiplier 1;
// Shape selects the process's dispersion where the process has one.
type Arrival struct {
	// Process is Poisson, Gamma or Weibull.
	Process string `json:"process"`
	// Rate is events per second per client (> 0).
	Rate float64 `json:"rate"`
	// Shape is the Gamma (integer, 1..64) or Weibull (0.3..8) shape
	// parameter; ignored for Poisson. Zero selects 1.
	Shape float64 `json:"shape,omitempty"`
}

// Cohort is one homogeneous client population: every client runs the
// same arrival process and draws keys and payload sizes from the same
// distributions, and every proposal carries the cohort's SLO class.
type Cohort struct {
	// Name labels the cohort in reports ("" allowed).
	Name string `json:"name,omitempty"`
	// Clients is the number of concurrent clients (≥ 1).
	Clients int `json:"clients"`
	// Class is the cohort's SLO class (0..MaxClasses-1; higher classes
	// are shed later under overload).
	Class int `json:"class,omitempty"`
	// Arrival is the per-client inter-arrival process.
	Arrival Arrival `json:"arrival"`
	// PayloadMin and PayloadMax bound the uniform synthetic payload
	// size in bytes (both zero for no payload).
	PayloadMin int `json:"payload_min,omitempty"`
	PayloadMax int `json:"payload_max,omitempty"`
	// Keys is the cohort's key-space size (0 selects 1). Keys route
	// proposals to consensus groups when the runtime is sharded.
	Keys int `json:"keys,omitempty"`
	// KeyTheta skews the key distribution: 0 is uniform, larger values
	// are more skewed (Zipf-like weights 1/(rank+1)^theta).
	KeyTheta float64 `json:"key_theta,omitempty"`
}

// Phase is one segment of the workload's phase schedule. The schedule
// warps every cohort's arrival rate: during a phase, rates are
// multiplied by the phase's Rate — 0 is an idle gap with no arrivals,
// 1 is nominal, larger values are bursts. The workload ends when the
// schedule does.
type Phase struct {
	// Name labels the phase ("ramp", "burst", "idle", ...).
	Name string `json:"name,omitempty"`
	// Duration is the phase length (> 0).
	Duration time.Duration `json:"duration"`
	// Rate is the arrival-rate multiplier (≥ 0; 0 idles the phase).
	Rate float64 `json:"rate"`
}

// Spec is one complete workload description. The zero spec is invalid;
// ParseSpec and Validate gate every entry point.
type Spec struct {
	// Seed determines every sample the generator draws.
	Seed int64 `json:"seed"`
	// Cohorts are the client populations (≥ 1 required).
	Cohorts []Cohort `json:"cohorts"`
	// Phases is the phase schedule (≥ 1 phase required).
	Phases []Phase `json:"phases"`
	// MaxEvents caps the merged event sequence (0 = uncapped). The cap
	// keeps generated chaos workloads inside the runtime's intake
	// bounds so virtual-time submission can never block.
	MaxEvents int `json:"max_events,omitempty"`
}

// JSON returns the spec as compact JSON (the form embedded in trace
// headers and accepted by ParseSpec).
func (s *Spec) JSON() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic("workload: spec marshal: " + err.Error()) // no unmarshalable fields exist
	}
	return string(b)
}

// ParseSpec parses and validates a JSON spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's bounds.
func (s *Spec) Validate() error {
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload: spec needs at least one cohort")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: spec needs at least one phase")
	}
	for i, c := range s.Cohorts {
		if c.Clients < 1 {
			return fmt.Errorf("workload: cohort %d: clients %d < 1", i, c.Clients)
		}
		if c.Class < 0 || c.Class >= MaxClasses {
			return fmt.Errorf("workload: cohort %d: class %d outside [0, %d]", i, c.Class, MaxClasses-1)
		}
		if c.PayloadMin < 0 || c.PayloadMax < c.PayloadMin {
			return fmt.Errorf("workload: cohort %d: payload bounds [%d, %d]", i, c.PayloadMin, c.PayloadMax)
		}
		if c.Keys < 0 || c.Keys > MaxKeys {
			return fmt.Errorf("workload: cohort %d: keys %d outside [0, %d]", i, c.Keys, MaxKeys)
		}
		if c.KeyTheta < 0 || c.KeyTheta > 8 {
			return fmt.Errorf("workload: cohort %d: key theta %g outside [0, 8]", i, c.KeyTheta)
		}
		a := c.Arrival
		if !(a.Rate > 0) || a.Rate > 1e9 {
			return fmt.Errorf("workload: cohort %d: rate %g outside (0, 1e9]", i, a.Rate)
		}
		switch a.Process {
		case Poisson:
		case Gamma:
			k := a.Shape
			if k == 0 {
				k = 1
			}
			if k != math.Trunc(k) || k < 1 || k > MaxErlangShape {
				return fmt.Errorf("workload: cohort %d: gamma shape %g not an integer in [1, %d]", i, a.Shape, MaxErlangShape)
			}
		case Weibull:
			k := a.Shape
			if k == 0 {
				k = 1
			}
			if k < 0.3 || k > 8 {
				return fmt.Errorf("workload: cohort %d: weibull shape %g outside [0.3, 8]", i, a.Shape)
			}
		default:
			return fmt.Errorf("workload: cohort %d: unknown arrival process %q", i, a.Process)
		}
	}
	for i, p := range s.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("workload: phase %d: duration %s", i, p.Duration)
		}
		if p.Rate < 0 || p.Rate > 1e6 {
			return fmt.Errorf("workload: phase %d: rate %g outside [0, 1e6]", i, p.Rate)
		}
	}
	if s.MaxEvents < 0 {
		return fmt.Errorf("workload: max events %d < 0", s.MaxEvents)
	}
	return nil
}

// Classes returns the number of SLO classes the spec uses: the highest
// cohort class plus one.
func (s *Spec) Classes() int {
	max := 0
	for _, c := range s.Cohorts {
		if c.Class > max {
			max = c.Class
		}
	}
	return max + 1
}

// Duration returns the schedule's total length.
func (s *Spec) Duration() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// Roll salts: each constant selects an independent stream of rolls per
// (seed, cohort, client, event).
const (
	saltArrival byte = 1 + iota
	saltErlang
	saltWeibull
	saltKey
	saltPayload
)

// roll derives one uniform sample in [0, 1) from the identifying
// coordinates alone — FNV-64a over (seed, cohort, client, event, extra,
// salt), mapped to the unit interval with 53 bits of precision, the
// chaos injector's hash-roll idiom. The FNV sum is passed through a
// 64-bit finalizer first: bare FNV avalanches single-byte differences
// poorly enough that adjacent Erlang stage rolls come out measurably
// anticorrelated, which the arrival-moment property tests catch. No
// state: the same coordinates always yield the same sample, on any
// goroutine, in any order.
func roll(seed int64, cohort, client, event int, extra uint64, salt byte) float64 {
	var buf [41]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(cohort))
	binary.LittleEndian.PutUint64(buf[16:], uint64(client))
	binary.LittleEndian.PutUint64(buf[24:], uint64(event))
	binary.LittleEndian.PutUint64(buf[32:], extra)
	buf[40] = salt
	h := fnv.New64a()
	h.Write(buf[:])
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// GenSpec derives a small mixed-class burst workload from a seed: three
// cohorts (bulk Poisson class 0, steady Gamma class 1, interactive
// Weibull class 2) over a ramp/burst/idle/steady schedule, capped at
// maxEvents. It is what the chaos harness and the CLI use when handed
// a bare seed instead of a spec file.
func GenSpec(seed int64, maxEvents int) *Spec {
	pick := func(salt byte, lo, hi float64) float64 {
		return lo + (hi-lo)*roll(seed, 0, 0, 0, 0, salt|0x80)
	}
	clients := 1 + int(pick(1, 1, 4))
	rate := pick(2, 40, 120)
	return &Spec{
		Seed: seed,
		Cohorts: []Cohort{
			{Name: "bulk", Clients: clients + 1, Class: 0,
				Arrival:    Arrival{Process: Poisson, Rate: rate * 2},
				PayloadMin: 64, PayloadMax: 1024, Keys: 256, KeyTheta: pick(3, 0, 1.2)},
			{Name: "steady", Clients: clients, Class: 1,
				Arrival:    Arrival{Process: Gamma, Rate: rate, Shape: 4},
				PayloadMin: 16, PayloadMax: 128, Keys: 64},
			{Name: "interactive", Clients: clients, Class: 2,
				Arrival:    Arrival{Process: Weibull, Rate: rate / 2, Shape: pick(4, 0.5, 0.9)},
				PayloadMin: 8, PayloadMax: 64, Keys: 16, KeyTheta: 0.8},
		},
		Phases: []Phase{
			{Name: "ramp", Duration: 40 * time.Millisecond, Rate: 0.5},
			{Name: "burst", Duration: 60 * time.Millisecond, Rate: pick(5, 1.5, 3)},
			{Name: "idle", Duration: 20 * time.Millisecond, Rate: 0},
			{Name: "steady", Duration: 80 * time.Millisecond, Rate: 1},
		},
		MaxEvents: maxEvents,
	}
}

// Value derives the proposal value of the seq-th merged event: unique
// per event, never zero, and a pure function of (seed, seq) so record
// and replay agree without coordination.
func Value(seed int64, seq int) model.Value {
	return model.Value(int64(seq+1)*1_000_003 + seed)
}
