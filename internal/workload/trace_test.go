package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"indulgence/internal/wire"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	spec := GenSpec(5, 32)
	tr := &Trace{
		Header: wire.TraceHeaderRecord{
			Version: wire.TraceFormatVersion, Deterministic: true,
			Seed: spec.Seed, N: 3, T: 1, Groups: 2, MaxBatch: 8,
			MaxInflight: 4, LingerNanos: 1e6, TimeoutNanos: 1e7,
			Algorithm: "atplus2", Placement: "hash",
			Classes: spec.Classes(), Spec: spec.JSON(),
		},
	}
	for _, e := range spec.Events() {
		tr.Events = append(tr.Events, e.Record())
		tr.Outcomes = append(tr.Outcomes, wire.TraceOutcomeRecord{
			Seq: uint64(e.Seq), Status: wire.TraceDecided,
			Instance: uint64(e.Seq/4 + 1), Value: e.Value, Round: 2,
			Batch: 4, Group: uint64(e.Seq % 2), Class: e.Class,
			LatencyNanos: int64(1000 * (e.Seq + 1)),
		})
	}
	return tr
}

// TestTraceRoundTrip pins the canonical encoding: encode→decode→encode
// must be the identity on bytes, and the decoded trace must carry every
// record.
func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	buf, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeTrace(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TornBytes != 0 {
		t.Fatalf("clean trace decoded with %d torn bytes", dec.TornBytes)
	}
	if dec.Header != tr.Header {
		t.Fatalf("header changed: %+v vs %+v", dec.Header, tr.Header)
	}
	if len(dec.Events) != len(tr.Events) || len(dec.Outcomes) != len(tr.Outcomes) {
		t.Fatalf("decoded %d events / %d outcomes, want %d / %d",
			len(dec.Events), len(dec.Outcomes), len(tr.Events), len(tr.Outcomes))
	}
	buf2, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoding is not byte-identical")
	}
	// The embedded spec must regenerate the recorded arrivals.
	spec, err := ParseSpec([]byte(dec.Header.Spec))
	if err != nil {
		t.Fatal(err)
	}
	regen := spec.Events()
	if len(regen) != len(dec.Events) {
		t.Fatalf("embedded spec regenerates %d events, recorded %d", len(regen), len(dec.Events))
	}
	for i, e := range regen {
		if e.Record() != dec.Events[i] {
			t.Fatalf("event %d: regenerated %+v, recorded %+v", i, e.Record(), dec.Events[i])
		}
	}
}

// TestTraceTornTail pins crash tolerance: truncating anywhere inside
// the final frame decodes to the longest intact prefix with the tail
// reported, never an error.
func TestTraceTornTail(t *testing.T) {
	tr := sampleTrace(t)
	buf, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	whole, err := DecodeTrace(buf)
	if err != nil {
		t.Fatal(err)
	}
	total := len(whole.Events) + len(whole.Outcomes)
	for cut := len(buf) - 1; cut > len(buf)-12 && cut > 0; cut-- {
		dec, err := DecodeTrace(buf[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if dec.TornBytes == 0 {
			t.Fatalf("cut at %d: no torn tail reported", cut)
		}
		if got := len(dec.Events) + len(dec.Outcomes); got != total-1 {
			t.Fatalf("cut at %d: kept %d records, want %d", cut, got, total-1)
		}
	}
}

// TestTraceCorruptMiddle pins that corruption anywhere before the tail
// is an error, not a silent truncation.
func TestTraceCorruptMiddle(t *testing.T) {
	tr := sampleTrace(t)
	buf, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), buf...)
	corrupt[len(buf)/2] ^= 0xFF
	if _, err := DecodeTrace(corrupt); err == nil {
		t.Fatal("mid-file corruption decoded without error")
	}
}

// TestTraceHeaderRequired pins that a trace must open with its header.
func TestTraceHeaderRequired(t *testing.T) {
	if _, err := DecodeTrace(nil); err == nil {
		t.Fatal("empty trace decoded without error")
	}
	ev := appendFrame(nil, wire.AppendTraceEventRecord(nil, wire.TraceEventRecord{Seq: 1}))
	if _, err := DecodeTrace(ev); err == nil {
		t.Fatal("headerless trace decoded without error")
	}
}

// TestTraceWriter pins the streaming recorder: records appended out of
// canonical order land on disk intact and re-canonicalize through
// Encode to the same bytes the in-memory trace produces.
func TestTraceWriter(t *testing.T) {
	tr := sampleTrace(t)
	path := filepath.Join(t.TempDir(), "t.trace")
	w, err := NewWriter(path, tr.Header)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave and reverse: the writer must not care about order.
	for i := len(tr.Events) - 1; i >= 0; i-- {
		if err := w.Event(tr.Events[i]); err != nil {
			t.Fatal(err)
		}
		if err := w.Outcome(tr.Outcomes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed trace does not re-canonicalize to the in-memory trace")
	}
	// A torn streamed file (crash mid-append) still reads.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	torn, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn.TornBytes == 0 {
		t.Fatal("torn streamed trace reported no torn tail")
	}
}
