package workload

// Trace file IO. A trace is a flat file of CRC-framed wire records —
// the journal's exact frame discipline (4-byte big-endian length,
// 4-byte big-endian CRC-32C of the payload, payload) applied to the
// trace record kinds: one TraceHeaderRecord first, then
// TraceEventRecords and TraceOutcomeRecords in any order. Like a
// journal segment, a trace tolerates a torn tail (a crash mid-append)
// by truncating to the longest intact prefix; any corruption before
// the tail is an error.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"

	"indulgence/internal/wire"
)

// frameHeader is the per-record overhead: length + CRC.
const frameHeader = 8

// castagnoli is the CRC-32C table (the journal's checksum).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one CRC-framed record to dst.
func appendFrame(dst, rec []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(rec, castagnoli))
	return append(dst, rec...)
}

// Trace is one decoded trace file.
type Trace struct {
	// Header describes the recorded run.
	Header wire.TraceHeaderRecord
	// Events are the recorded arrivals, sorted by Seq.
	Events []wire.TraceEventRecord
	// Outcomes are the recorded fates, sorted by Seq.
	Outcomes []wire.TraceOutcomeRecord
	// TornBytes is the length of the torn tail dropped during decode
	// (0 for a cleanly-closed trace).
	TornBytes int
}

// EventList converts the trace's event records to generator events.
func (t *Trace) EventList() []Event {
	evs := make([]Event, 0, len(t.Events))
	for _, r := range t.Events {
		evs = append(evs, EventFromRecord(r))
	}
	return evs
}

// Encode renders the trace in canonical byte order — header, events by
// Seq, outcomes by Seq — the form whose bytes the record→replay
// fixed-point property compares. The receiver is not modified.
func (t *Trace) Encode() ([]byte, error) {
	hdr, err := wire.AppendTraceHeaderRecord(nil, t.Header)
	if err != nil {
		return nil, err
	}
	buf := appendFrame(nil, hdr)
	events := append([]wire.TraceEventRecord(nil), t.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	for _, e := range events {
		buf = appendFrame(buf, wire.AppendTraceEventRecord(nil, e))
	}
	outcomes := append([]wire.TraceOutcomeRecord(nil), t.Outcomes...)
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Seq < outcomes[j].Seq })
	for _, o := range outcomes {
		buf = appendFrame(buf, wire.AppendTraceOutcomeRecord(nil, o))
	}
	return buf, nil
}

// DecodeTrace decodes a trace from its file bytes. A torn tail — a
// final frame whose length, checksum or payload is incomplete or whose
// CRC mismatches — is dropped and reported in TornBytes; torn or
// unknown records anywhere else are errors.
func DecodeTrace(b []byte) (*Trace, error) {
	t := &Trace{}
	off := 0
	sawHeader := false
	for off < len(b) {
		rest := len(b) - off
		if rest < frameHeader {
			t.TornBytes = rest
			break
		}
		size := int(binary.BigEndian.Uint32(b[off:]))
		want := binary.BigEndian.Uint32(b[off+4:])
		if size > wire.MaxFrameSize {
			return nil, fmt.Errorf("workload: trace frame of %d bytes at offset %d", size, off)
		}
		if rest < frameHeader+size {
			t.TornBytes = rest
			break
		}
		rec := b[off+frameHeader : off+frameHeader+size]
		if crc32.Checksum(rec, castagnoli) != want {
			// A CRC mismatch on the final frame is a torn append; any
			// earlier mismatch is corruption.
			if off+frameHeader+size == len(b) {
				t.TornBytes = rest
				break
			}
			return nil, fmt.Errorf("workload: trace CRC mismatch at offset %d", off)
		}
		dec, n, err := wire.DecodeTraceRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("workload: trace record at offset %d: %w", off, err)
		}
		if n != len(rec) {
			return nil, fmt.Errorf("workload: trace record at offset %d: %d trailing bytes", off, len(rec)-n)
		}
		switch r := dec.(type) {
		case wire.TraceHeaderRecord:
			if sawHeader {
				return nil, fmt.Errorf("workload: duplicate trace header at offset %d", off)
			}
			sawHeader = true
			t.Header = r
		case wire.TraceEventRecord:
			if !sawHeader {
				return nil, fmt.Errorf("workload: trace event before header")
			}
			t.Events = append(t.Events, r)
		case wire.TraceOutcomeRecord:
			if !sawHeader {
				return nil, fmt.Errorf("workload: trace outcome before header")
			}
			t.Outcomes = append(t.Outcomes, r)
		}
		off += frameHeader + size
	}
	if !sawHeader {
		return nil, fmt.Errorf("workload: trace has no header")
	}
	sort.Slice(t.Events, func(i, j int) bool { return t.Events[i].Seq < t.Events[j].Seq })
	sort.Slice(t.Outcomes, func(i, j int) bool { return t.Outcomes[i].Seq < t.Outcomes[j].Seq })
	return t, nil
}

// WriteTrace writes the trace to path in canonical order.
func WriteTrace(path string, t *Trace) error {
	buf, err := t.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// ReadTrace reads and decodes the trace at path.
func ReadTrace(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeTrace(b)
}

// Writer streams a trace to disk during a live recording: the header
// immediately, then events and outcomes in completion order, safe for
// concurrent use by the recording run's client goroutines. Live
// recordings are not in canonical byte order — replay re-canonicalizes
// through Encode.
type Writer struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// NewWriter creates path and writes the header frame.
func NewWriter(path string, hdr wire.TraceHeaderRecord) (*Writer, error) {
	enc, err := wire.AppendTraceHeaderRecord(nil, hdr)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(appendFrame(nil, enc)); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f}, nil
}

// Event appends one arrival record.
func (w *Writer) Event(r wire.TraceEventRecord) error {
	return w.append(wire.AppendTraceEventRecord(nil, r))
}

// Outcome appends one outcome record.
func (w *Writer) Outcome(r wire.TraceOutcomeRecord) error {
	return w.append(wire.AppendTraceOutcomeRecord(nil, r))
}

func (w *Writer) append(rec []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if _, err := w.f.Write(appendFrame(nil, rec)); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close flushes and closes the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	return w.f.Close()
}
