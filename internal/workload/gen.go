package workload

// Event generation: per-(cohort, client) arrival streams sampled from
// seed-hash rolls, warped through the phase schedule, and merged into
// one global arrival order. Everything here is a pure function of the
// spec — no clocks, no PRNG state, no goroutines — so the generated
// sequence is byte-identical across runs, platforms and GOMAXPROCS.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"indulgence/internal/model"
	"indulgence/internal/wire"
)

// Event is one generated proposal arrival.
type Event struct {
	// Seq is the event's position in the merged arrival order.
	Seq int
	// At is the arrival instant as an offset from run start.
	At time.Duration
	// Cohort and Client identify the generating stream.
	Cohort int
	Client int
	// Class is the proposal's SLO class (the cohort's class).
	Class int
	// Key routes the proposal when the runtime is sharded.
	Key uint64
	// Value is the proposed value (unique per event).
	Value model.Value
	// Payload is the synthetic payload size in bytes.
	Payload int
}

// Record converts the event to its trace-file record.
func (e Event) Record() wire.TraceEventRecord {
	return wire.TraceEventRecord{
		Seq:     uint64(e.Seq),
		AtNanos: int64(e.At),
		Cohort:  e.Cohort,
		Client:  e.Client,
		Class:   e.Class,
		Key:     e.Key,
		Value:   e.Value,
		Payload: e.Payload,
	}
}

// EventFromRecord converts a trace-file record back to an event.
func EventFromRecord(r wire.TraceEventRecord) Event {
	return Event{
		Seq:     int(r.Seq),
		At:      time.Duration(r.AtNanos),
		Cohort:  r.Cohort,
		Client:  r.Client,
		Class:   r.Class,
		Key:     r.Key,
		Value:   r.Value,
		Payload: r.Payload,
	}
}

// interArrival samples the event-th raw inter-arrival gap (in seconds,
// at phase multiplier 1) of one client's stream.
func interArrival(s *Spec, cohort int, c Cohort, client, event int) float64 {
	a := c.Arrival
	switch a.Process {
	case Gamma:
		// Erlang: the sum of k unit-exponential stages, one roll each.
		k := int(a.Shape)
		if k < 1 {
			k = 1
		}
		sum := 0.0
		for j := 0; j < k; j++ {
			u := roll(s.Seed, cohort, client, event, uint64(j), saltErlang)
			sum += -math.Log1p(-u)
		}
		// Mean k·scale must equal 1/rate, so scale = 1/(rate·k).
		return sum / (a.Rate * float64(k))
	case Weibull:
		k := a.Shape
		if k == 0 {
			k = 1
		}
		u := roll(s.Seed, cohort, client, event, 0, saltWeibull)
		// Mean scale·Γ(1+1/k) must equal 1/rate.
		scale := 1 / (a.Rate * math.Gamma(1+1/k))
		return scale * math.Pow(-math.Log1p(-u), 1/k)
	default: // Poisson
		u := roll(s.Seed, cohort, client, event, 0, saltArrival)
		return -math.Log1p(-u) / a.Rate
	}
}

// advance consumes dt seconds of raw (multiplier-1) arrival time
// starting from wall offset t, warping through the phase schedule: a
// phase with multiplier m consumes raw time m times faster than wall
// time, and an idle phase (m = 0) is skipped outright. It returns the
// new wall offset and false when the schedule ends first.
func advance(phases []Phase, t time.Duration, dt float64) (time.Duration, bool) {
	var start time.Duration
	for _, p := range phases {
		end := start + p.Duration
		if t >= end {
			start = end
			continue
		}
		if p.Rate == 0 {
			t = end
			start = end
			continue
		}
		// Raw seconds available before this phase ends.
		avail := (end - t).Seconds() * p.Rate
		if dt <= avail {
			return t + time.Duration(dt/p.Rate*float64(time.Second)), true
		}
		dt -= avail
		t = end
		start = end
	}
	return t, false
}

// key samples the stream's event-th key from the cohort's key
// distribution: uniform when KeyTheta is 0, Zipf-like (weights
// 1/(rank+1)^theta over a precomputed CDF) otherwise.
func key(s *Spec, cohort int, c Cohort, client, event int, cdf []float64) uint64 {
	n := c.Keys
	if n <= 1 {
		return 0
	}
	u := roll(s.Seed, cohort, client, event, 0, saltKey)
	if len(cdf) == 0 {
		return uint64(u * float64(n))
	}
	target := u * cdf[len(cdf)-1]
	return uint64(sort.SearchFloat64s(cdf, target))
}

// keyCDF precomputes the cohort's Zipf cumulative weights (nil for a
// uniform cohort).
func keyCDF(c Cohort) []float64 {
	if c.KeyTheta == 0 || c.Keys <= 1 {
		return nil
	}
	cdf := make([]float64, c.Keys)
	sum := 0.0
	for r := 0; r < c.Keys; r++ {
		sum += 1 / math.Pow(float64(r+1), c.KeyTheta)
		cdf[r] = sum
	}
	return cdf
}

// payloadSize samples the stream's event-th payload size.
func payloadSize(s *Spec, cohort int, c Cohort, client, event int) int {
	if c.PayloadMax <= c.PayloadMin {
		return c.PayloadMin
	}
	u := roll(s.Seed, cohort, client, event, 0, saltPayload)
	return c.PayloadMin + int(u*float64(c.PayloadMax-c.PayloadMin+1))
}

// Events generates the spec's complete merged arrival sequence. The
// spec must have been validated.
func (s *Spec) Events() []Event {
	var all []Event
	for ci, c := range s.Cohorts {
		cdf := keyCDF(c)
		for cl := 0; cl < c.Clients; cl++ {
			var t time.Duration
			for ev := 0; ; ev++ {
				dt := interArrival(s, ci, c, cl, ev)
				next, ok := advance(s.Phases, t, dt)
				if !ok {
					break
				}
				t = next
				all = append(all, Event{
					At:      t,
					Cohort:  ci,
					Client:  cl,
					Class:   c.Class,
					Key:     key(s, ci, c, cl, ev, cdf),
					Payload: payloadSize(s, ci, c, cl, ev),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Cohort != b.Cohort {
			return a.Cohort < b.Cohort
		}
		return a.Client < b.Client
	})
	if s.MaxEvents > 0 && len(all) > s.MaxEvents {
		all = all[:s.MaxEvents]
	}
	for i := range all {
		all[i].Seq = i
		all[i].Value = Value(s.Seed, i)
	}
	return all
}

// EventLog renders events one per line in a canonical text form — the
// byte-compare surface of the determinism tests.
func EventLog(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "seq=%d at=%d cohort=%d client=%d class=%d key=%d payload=%d value=%d\n",
			e.Seq, int64(e.At), e.Cohort, e.Client, e.Class, e.Key, e.Payload, e.Value)
	}
	return b.String()
}
