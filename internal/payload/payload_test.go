package payload

import (
	"bytes"
	"testing"

	"indulgence/internal/model"
)

// allPayloads returns one instance of every payload type.
func allPayloads() []model.Payload {
	return []model.Payload{
		NewValues([]model.Value{3, 1, 2}),
		EstHalt{Est: 4, Halt: model.NewPIDSet(1, 3)},
		NewEstimate{NE: model.Some(5)},
		NewEstimate{NE: model.Bottom()},
		Decide{V: 6},
		Estimate{Est: 7, TS: 2},
		Propose{V: 8},
		Ack{Val: model.Some(9)},
		Ack{Val: model.Bottom()},
		AckEst{Est: 10, TS: 3, Ack: model.Some(11)},
		Adopt{Est: 12},
		Wrap{Inner: Estimate{Est: 13, TS: 4}},
		Wrap{},
	}
}

func TestKindsUnique(t *testing.T) {
	seen := make(map[string]model.Payload)
	for _, p := range allPayloads() {
		if prev, dup := seen[p.Kind()]; dup {
			// Same kind is fine only for the same type (variants of one
			// payload, like Some/Bottom).
			if prevType, curType := typeName(prev), typeName(p); prevType != curType {
				t.Errorf("kind %q shared by %s and %s", p.Kind(), prevType, curType)
			}
		}
		seen[p.Kind()] = p
	}
}

func typeName(p model.Payload) string {
	switch p.(type) {
	case Values:
		return "Values"
	case EstHalt:
		return "EstHalt"
	case NewEstimate:
		return "NewEstimate"
	case Decide:
		return "Decide"
	case Estimate:
		return "Estimate"
	case Propose:
		return "Propose"
	case Ack:
		return "Ack"
	case AckEst:
		return "AckEst"
	case Adopt:
		return "Adopt"
	case Wrap:
		return "Wrap"
	default:
		return "?"
	}
}

func TestDigestsDistinct(t *testing.T) {
	// Digests must be distinct across all sample payloads once the kind
	// tag is included (as model.Message does).
	seen := make(map[string]string)
	for _, p := range allPayloads() {
		d := model.AppendDigestString(nil, p.Kind())
		d = p.AppendDigest(d)
		key := string(d)
		if prev, dup := seen[key]; dup {
			t.Errorf("digest collision between %v and %v", prev, p)
		}
		seen[key] = typeName(p)
	}
}

func TestCloneDeep(t *testing.T) {
	v := NewValues([]model.Value{1, 2, 3})
	c, ok := v.ClonePayload().(Values)
	if !ok {
		t.Fatal("clone changed type")
	}
	c.Vals[0] = 99
	if v.Vals[0] == 99 {
		t.Fatal("Values clone shares backing array")
	}
	w := Wrap{Inner: NewValues([]model.Value{5})}
	wc, ok := w.ClonePayload().(Wrap)
	if !ok {
		t.Fatal("wrap clone changed type")
	}
	wc.Inner.(Values).Vals[0] = 42
	if w.Inner.(Values).Vals[0] == 42 {
		t.Fatal("Wrap clone shares inner backing array")
	}
}

func TestNewValuesSortsAndCopies(t *testing.T) {
	src := []model.Value{3, 1, 2}
	v := NewValues(src)
	if v.Vals[0] != 1 || v.Vals[1] != 2 || v.Vals[2] != 3 {
		t.Fatalf("not sorted: %v", v.Vals)
	}
	src[0] = 77
	if v.Vals[0] == 77 || v.Vals[1] == 77 || v.Vals[2] == 77 {
		t.Fatal("NewValues shares the caller's slice")
	}
}

func TestOfRound(t *testing.T) {
	msgs := []model.Message{
		{From: 1, Round: 1, Payload: Decide{V: 1}},
		{From: 2, Round: 2, Payload: Decide{V: 2}},
		{From: 3, Round: 2, Payload: Decide{V: 3}},
	}
	got := OfRound(2, msgs)
	if len(got) != 2 || got[0].From != 2 || got[1].From != 3 {
		t.Fatalf("OfRound = %v", got)
	}
	if len(OfRound(9, msgs)) != 0 {
		t.Fatal("OfRound of absent round should be empty")
	}
}

func TestFindDecide(t *testing.T) {
	msgs := []model.Message{
		{From: 1, Round: 1, Payload: Estimate{Est: 9}},
		{From: 2, Round: 3, Payload: Decide{V: 5}},
		{From: 3, Round: 2, Payload: Decide{V: 4}},
	}
	v, ok := FindDecide(msgs)
	if !ok || v != 4 {
		t.Fatalf("FindDecide = %d, %v (want min of flooded values)", v, ok)
	}
	if _, ok := FindDecide(msgs[:1]); ok {
		t.Fatal("no DECIDE present")
	}
}

func TestBestEstimate(t *testing.T) {
	msgs := []model.Message{
		{From: 1, Round: 1, Payload: Estimate{Est: 5, TS: 1}},
		{From: 2, Round: 1, Payload: AckEst{Est: 3, TS: 2, Ack: model.Bottom()}},
		{From: 3, Round: 1, Payload: Estimate{Est: 9, TS: 2}},
		{From: 4, Round: 1, Payload: Decide{V: 1}}, // ignored
	}
	est, ts, ok := BestEstimate(msgs)
	if !ok || ts != 2 || est != 3 {
		t.Fatalf("BestEstimate = (%d, %d, %v), want (3, 2, true): ties break to min value", est, ts, ok)
	}
	if _, _, ok := BestEstimate(nil); ok {
		t.Fatal("empty input should report !ok")
	}
}

func TestStringers(t *testing.T) {
	for _, p := range allPayloads() {
		s, ok := p.(interface{ String() string })
		if !ok {
			t.Fatalf("%s has no String()", typeName(p))
		}
		if s.String() == "" {
			t.Fatalf("%s renders empty", typeName(p))
		}
	}
}

func TestDigestStability(t *testing.T) {
	for _, p := range allPayloads() {
		a := p.AppendDigest(nil)
		b := p.ClonePayload().AppendDigest(nil)
		if !bytes.Equal(a, b) {
			t.Errorf("%s digest differs from its clone's", typeName(p))
		}
	}
}
