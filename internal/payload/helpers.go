package payload

import "indulgence/internal/model"

// OfRound returns the messages among delivered that were sent in round k
// (in ES, delivered may also contain older, delayed messages). delivered
// must be sorted by (Round, From) as the Algorithm contract guarantees, so
// the round-k messages form a contiguous block and the result is a
// read-only subslice of delivered — no allocation.
func OfRound(k model.Round, delivered []model.Message) []model.Message {
	lo := 0
	for lo < len(delivered) && delivered[lo].Round < k {
		lo++
	}
	hi := lo
	for hi < len(delivered) && delivered[hi].Round == k {
		hi++
	}
	return delivered[lo:hi:hi]
}

// FindDecide scans delivered (any send round) for a Decide payload and
// returns the smallest decided value found. Every algorithm in this
// repository floods DECIDE after deciding and adopts any DECIDE it
// receives; by uniform agreement all flooded values are equal, so the
// minimum is just a deterministic choice.
func FindDecide(delivered []model.Message) (model.Value, bool) {
	var (
		best  model.Value
		found bool
	)
	for _, m := range delivered {
		d, ok := m.Payload.(Decide)
		if !ok {
			continue
		}
		if !found || d.V < best {
			best, found = d.V, true
		}
	}
	return best, found
}

// BestEstimate returns the estimate with the highest timestamp (ties broken
// towards the smallest value) among the Estimate and AckEst payloads in
// msgs. It is the coordinator selection rule of the rotating-coordinator
// algorithms. ok is false if msgs contains no estimates.
func BestEstimate(msgs []model.Message) (est model.Value, ts int, ok bool) {
	for _, m := range msgs {
		var (
			e model.Value
			t int
		)
		switch p := m.Payload.(type) {
		case Estimate:
			e, t = p.Est, p.TS
		case AckEst:
			e, t = p.Est, p.TS
		default:
			continue
		}
		if !ok || t > ts || (t == ts && e < est) {
			est, ts, ok = e, t, true
		}
	}
	return est, ts, ok
}
