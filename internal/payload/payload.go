// Package payload defines the message payloads exchanged by the consensus
// algorithms in this repository. Payloads are immutable value carriers
// implementing model.Payload: a stable Kind tag, a deterministic digest
// encoding (used for run digests and indistinguishability checks) and deep
// cloning for safe hand-off between processes.
package payload

import (
	"fmt"
	"slices"

	"indulgence/internal/model"
)

// Kind tags. Each payload type has a unique tag, shared with the wire
// codec.
const (
	KindValues      = "values"  // Values: FloodSet value sets
	KindEstHalt     = "esthalt" // EstHalt: A_{t+2}/FloodSetWS Phase-1 ESTIMATE
	KindNewEstimate = "newest"  // NewEstimate: A_{t+2} round-(t+2) NEWESTIMATE
	KindDecide      = "decide"  // Decide: decision flooding
	KindEstimate    = "est"     // Estimate: (est, ts) full-information exchange
	KindPropose     = "prop"    // Propose: coordinator proposal
	KindAck         = "ack"     // Ack: coordinator-phase acknowledgement
	KindAckEst      = "ackest"  // AckEst: Hurfin–Raynal combined ack + estimate
	KindAdopt       = "adopt"   // Adopt: AMR/A_{f+2} adopted-estimate exchange
	KindWrap        = "wrap"    // Wrap: A_{t+2} delegation to the underlying consensus C
)

// Compile-time interface compliance checks.
var (
	_ model.Payload = Values{}
	_ model.Payload = EstHalt{}
	_ model.Payload = NewEstimate{}
	_ model.Payload = Decide{}
	_ model.Payload = Estimate{}
	_ model.Payload = Propose{}
	_ model.Payload = Ack{}
	_ model.Payload = AckEst{}
	_ model.Payload = Adopt{}
	_ model.Payload = Wrap{}
)

// Values carries a set of proposal values, sorted ascending. It is the
// FloodSet message.
type Values struct {
	// Vals is the sorted value set.
	Vals []model.Value
}

// NewValues returns a Values payload over a defensive sorted copy of vs.
func NewValues(vs []model.Value) Values {
	out := slices.Clone(vs)
	slices.Sort(out)
	return Values{Vals: out}
}

// Kind implements model.Payload.
func (p Values) Kind() string { return KindValues }

// AppendDigest implements model.Payload.
func (p Values) AppendDigest(dst []byte) []byte { return model.AppendDigestValues(dst, p.Vals) }

// ClonePayload implements model.Payload.
func (p Values) ClonePayload() model.Payload { return Values{Vals: slices.Clone(p.Vals)} }

// String implements fmt.Stringer.
func (p Values) String() string { return fmt.Sprintf("VALUES%v", p.Vals) }

// EstHalt is the Phase-1 ESTIMATE message of A_{t+2} (Fig. 2) and of
// FloodSetWS: the sender's current estimate and its Halt set.
type EstHalt struct {
	// Est is the sender's estimate at the end of the previous round.
	Est model.Value
	// Halt is the sender's Halt set at the end of the previous round.
	Halt model.PIDSet
}

// Kind implements model.Payload.
func (p EstHalt) Kind() string { return KindEstHalt }

// AppendDigest implements model.Payload.
func (p EstHalt) AppendDigest(dst []byte) []byte {
	dst = model.AppendDigestInt(dst, int64(p.Est))
	return model.AppendDigestPIDSet(dst, p.Halt)
}

// ClonePayload implements model.Payload.
func (p EstHalt) ClonePayload() model.Payload { return p }

// String implements fmt.Stringer.
func (p EstHalt) String() string { return fmt.Sprintf("ESTIMATE(est=%d halt=%v)", p.Est, p.Halt) }

// NewEstimate is the round-(t+2) NEWESTIMATE message of A_{t+2}: the new
// estimate nE ∈ V ∪ {⊥}.
type NewEstimate struct {
	// NE is the new estimate; ⊥ signals a detected false suspicion.
	NE model.OptValue
}

// Kind implements model.Payload.
func (p NewEstimate) Kind() string { return KindNewEstimate }

// AppendDigest implements model.Payload.
func (p NewEstimate) AppendDigest(dst []byte) []byte { return model.AppendDigestOptValue(dst, p.NE) }

// ClonePayload implements model.Payload.
func (p NewEstimate) ClonePayload() model.Payload { return p }

// String implements fmt.Stringer.
func (p NewEstimate) String() string { return fmt.Sprintf("NEWESTIMATE(%v)", p.NE) }

// Decide floods a decision value.
type Decide struct {
	// V is the decided value.
	V model.Value
}

// Kind implements model.Payload.
func (p Decide) Kind() string { return KindDecide }

// AppendDigest implements model.Payload.
func (p Decide) AppendDigest(dst []byte) []byte { return model.AppendDigestInt(dst, int64(p.V)) }

// ClonePayload implements model.Payload.
func (p Decide) ClonePayload() model.Payload { return p }

// String implements fmt.Stringer.
func (p Decide) String() string { return fmt.Sprintf("DECIDE(%d)", p.V) }

// Estimate is the timestamped estimate of the rotating-coordinator and
// leader-based algorithms.
type Estimate struct {
	// Est is the sender's current estimate.
	Est model.Value
	// TS is the phase in which the estimate was last adopted from a
	// coordinator (0 = initial).
	TS int
}

// Kind implements model.Payload.
func (p Estimate) Kind() string { return KindEstimate }

// AppendDigest implements model.Payload.
func (p Estimate) AppendDigest(dst []byte) []byte {
	dst = model.AppendDigestInt(dst, int64(p.Est))
	return model.AppendDigestInt(dst, int64(p.TS))
}

// ClonePayload implements model.Payload.
func (p Estimate) ClonePayload() model.Payload { return p }

// String implements fmt.Stringer.
func (p Estimate) String() string { return fmt.Sprintf("EST(est=%d ts=%d)", p.Est, p.TS) }

// Propose is a coordinator's proposal for its phase.
type Propose struct {
	// V is the proposed value.
	V model.Value
}

// Kind implements model.Payload.
func (p Propose) Kind() string { return KindPropose }

// AppendDigest implements model.Payload.
func (p Propose) AppendDigest(dst []byte) []byte { return model.AppendDigestInt(dst, int64(p.V)) }

// ClonePayload implements model.Payload.
func (p Propose) ClonePayload() model.Payload { return p }

// String implements fmt.Stringer.
func (p Propose) String() string { return fmt.Sprintf("PROPOSE(%d)", p.V) }

// Ack acknowledges (or, with ⊥, refuses) a coordinator proposal.
type Ack struct {
	// Val is the acknowledged proposal value, or ⊥ for a negative
	// acknowledgement (the coordinator was suspected).
	Val model.OptValue
}

// Kind implements model.Payload.
func (p Ack) Kind() string { return KindAck }

// AppendDigest implements model.Payload.
func (p Ack) AppendDigest(dst []byte) []byte { return model.AppendDigestOptValue(dst, p.Val) }

// ClonePayload implements model.Payload.
func (p Ack) ClonePayload() model.Payload { return p }

// String implements fmt.Stringer.
func (p Ack) String() string { return fmt.Sprintf("ACK(%v)", p.Val) }

// AckEst is the Hurfin–Raynal second-round message: an acknowledgement
// combined with the sender's timestamped estimate, so the next coordinator
// always reads fresh estimates.
type AckEst struct {
	// Est is the sender's current estimate.
	Est model.Value
	// TS is the phase in which Est was last adopted.
	TS int
	// Ack is the acknowledged proposal value, or ⊥.
	Ack model.OptValue
}

// Kind implements model.Payload.
func (p AckEst) Kind() string { return KindAckEst }

// AppendDigest implements model.Payload.
func (p AckEst) AppendDigest(dst []byte) []byte {
	dst = model.AppendDigestInt(dst, int64(p.Est))
	dst = model.AppendDigestInt(dst, int64(p.TS))
	return model.AppendDigestOptValue(dst, p.Ack)
}

// ClonePayload implements model.Payload.
func (p AckEst) ClonePayload() model.Payload { return p }

// String implements fmt.Stringer.
func (p AckEst) String() string {
	return fmt.Sprintf("ACKEST(est=%d ts=%d ack=%v)", p.Est, p.TS, p.Ack)
}

// Adopt is the adopted-estimate exchange of AMR and A_{f+2}.
type Adopt struct {
	// Est is the sender's (possibly just adopted) estimate.
	Est model.Value
}

// Kind implements model.Payload.
func (p Adopt) Kind() string { return KindAdopt }

// AppendDigest implements model.Payload.
func (p Adopt) AppendDigest(dst []byte) []byte { return model.AppendDigestInt(dst, int64(p.Est)) }

// ClonePayload implements model.Payload.
func (p Adopt) ClonePayload() model.Payload { return p }

// String implements fmt.Stringer.
func (p Adopt) String() string { return fmt.Sprintf("ADOPT(%d)", p.Est) }

// Wrap carries a message of the underlying consensus algorithm C inside
// Phase 2 of A_{t+2} (rounds t+3 and later). Inner payloads keep their own
// kinds; Wrap adds a layer so DECIDE flooding and C traffic coexist.
type Wrap struct {
	// Inner is the underlying algorithm's payload (may be nil for a
	// dummy round message).
	Inner model.Payload
}

// Kind implements model.Payload.
func (p Wrap) Kind() string { return KindWrap }

// AppendDigest implements model.Payload.
func (p Wrap) AppendDigest(dst []byte) []byte {
	if p.Inner == nil {
		return model.AppendDigestString(dst, "")
	}
	dst = model.AppendDigestString(dst, p.Inner.Kind())
	return p.Inner.AppendDigest(dst)
}

// ClonePayload implements model.Payload.
func (p Wrap) ClonePayload() model.Payload {
	if p.Inner == nil {
		return Wrap{}
	}
	return Wrap{Inner: p.Inner.ClonePayload()}
}

// String implements fmt.Stringer.
func (p Wrap) String() string { return fmt.Sprintf("C[%v]", p.Inner) }
