package runtime_test

import (
	"context"
	"testing"
	"time"

	"indulgence/internal/core"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/transport"
)

func props(n int) []model.Value {
	out := make([]model.Value, n)
	for i := range out {
		out[i] = model.Value(i + 1)
	}
	return out
}

// newMemoryCluster assembles a cluster over a fresh hub.
func newMemoryCluster(t *testing.T, n, tt int, factory model.Factory, timeout time.Duration) (*transport.Hub, *runtime.Cluster) {
	t.Helper()
	hub, err := transport.NewHub(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	eps := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	cl, err := runtime.New(runtime.Config{
		N: n, T: tt,
		Factory:     factory,
		Proposals:   props(n),
		Endpoints:   eps,
		BaseTimeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hub, cl
}

// assertAgreement checks results for agreement and returns the decision
// count.
func assertAgreement(t *testing.T, results []runtime.NodeResult) int {
	t.Helper()
	var (
		val     model.Value
		have    bool
		decided int
	)
	for _, r := range results {
		v, ok := r.Decision.Get()
		if !ok {
			continue
		}
		decided++
		if !have {
			val, have = v, true
		} else if v != val {
			t.Fatalf("agreement violated: %d vs %d", val, v)
		}
	}
	return decided
}

func TestQuietNetworkFastPath(t *testing.T) {
	_, cl := newMemoryCluster(t, 5, 2, core.New(core.Options{}), 50*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := assertAgreement(t, results); got != 5 {
		t.Fatalf("%d of 5 decided", got)
	}
	for _, r := range results {
		if r.Round != 4 {
			t.Errorf("p%d decided at round %d, want t+2=4", r.ID, r.Round)
		}
	}
}

func TestAsynchronousPeriod(t *testing.T) {
	hub, cl := newMemoryCluster(t, 5, 2, core.New(core.Options{}), 8*time.Millisecond)
	hub.DelayProcess(1, 60*time.Millisecond)
	time.AfterFunc(250*time.Millisecond, hub.Heal)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := assertAgreement(t, results); got < 5 {
		t.Fatalf("%d of 5 decided", got)
	}
}

func TestCrashInjection(t *testing.T) {
	_, cl := newMemoryCluster(t, 5, 2, core.New(core.Options{}), 8*time.Millisecond)
	if err := cl.Crash(2); err != nil { // crash before start is honoured
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := assertAgreement(t, results); got < 4 {
		t.Fatalf("%d of 4 live processes decided", got)
	}
	if !results[1].Crashed {
		t.Fatal("p2 not marked crashed")
	}
	if _, ok := results[1].Decision.Get(); ok {
		t.Fatal("crashed process decided")
	}
}

func TestWaitQuorumPolicy(t *testing.T) {
	hub, err := transport.NewHub(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	eps := make([]transport.Transport, 4)
	for i := range eps {
		if eps[i], err = hub.Endpoint(model.ProcessID(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := runtime.New(runtime.Config{
		N: 4, T: 1,
		Factory:     core.NewAfPlus2(),
		Proposals:   props(4),
		Endpoints:   eps,
		WaitPolicy:  core.WaitQuorum,
		BaseTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := assertAgreement(t, results); got != 4 {
		t.Fatalf("%d of 4 decided", got)
	}
}

func TestConfigErrors(t *testing.T) {
	hub, err := transport.NewHub(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	e1, _ := hub.Endpoint(1)
	e2, _ := hub.Endpoint(2)
	good := runtime.Config{
		N: 2, T: 0,
		Factory:   core.NewAfPlus2(),
		Proposals: props(2),
		Endpoints: []transport.Transport{e1, e2},
	}
	bad := good
	bad.N = 1
	if _, err := runtime.New(bad); err == nil {
		t.Fatal("n=1 accepted")
	}
	bad = good
	bad.Proposals = props(3)
	if _, err := runtime.New(bad); err == nil {
		t.Fatal("proposal mismatch accepted")
	}
	bad = good
	bad.Factory = nil
	if _, err := runtime.New(bad); err == nil {
		t.Fatal("nil factory accepted")
	}
	bad = good
	bad.Endpoints = []transport.Transport{e2, e1}
	if _, err := runtime.New(bad); err == nil {
		t.Fatal("misordered endpoints accepted")
	}
}

func TestRunOnce(t *testing.T) {
	_, cl := newMemoryCluster(t, 3, 1, core.New(core.Options{}), 10*time.Millisecond)
	ctx := context.Background()
	if _, err := cl.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(ctx); err == nil {
		t.Fatal("second Run accepted")
	}
	if err := cl.Crash(9); err == nil {
		t.Fatal("crash of unknown process accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	// With more crashes than t the survivors cannot assemble a quorum;
	// the run must end via the context, reporting whoever decided.
	_, cl := newMemoryCluster(t, 3, 1, core.New(core.Options{}), 5*time.Millisecond)
	_ = cl.Crash(1)
	_ = cl.Crash(2)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	results, err := cl.Run(ctx)
	if err == nil {
		t.Fatal("expected a context error")
	}
	for _, r := range results[:2] {
		if _, ok := r.Decision.Get(); ok {
			t.Fatal("crashed process decided")
		}
	}
}

// TestStartDecisionsStop drives the non-blocking API directly: two
// clusters share one hub's sockets through muxes, run concurrently as
// separate consensus instances, and both reach agreement.
func TestStartDecisionsStop(t *testing.T) {
	const n, tt = 5, 2
	hub, err := transport.NewHub(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	muxes := make([]*transport.Mux, n)
	for i := 0; i < n; i++ {
		ep, err := hub.Endpoint(model.ProcessID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		muxes[i] = transport.NewMux(ep)
		t.Cleanup(func(m *transport.Mux) func() { return func() { _ = m.Close() } }(muxes[i]))
	}

	clusters := make([]*runtime.Cluster, 2)
	for inst := range clusters {
		eps := make([]transport.Transport, n)
		for i := 0; i < n; i++ {
			ep, err := muxes[i].Open(uint64(inst))
			if err != nil {
				t.Fatal(err)
			}
			eps[i] = ep
		}
		cl, err := runtime.New(runtime.Config{
			N: n, T: tt,
			Factory:     core.New(core.Options{}),
			Proposals:   props(n),
			Endpoints:   eps,
			BaseTimeout: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		clusters[inst] = cl
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, cl := range clusters {
		if err := cl.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for inst, cl := range clusters {
		results := make([]runtime.NodeResult, 0, n)
		for len(results) < n {
			select {
			case res := <-cl.Decisions():
				results = append(results, res)
			case <-ctx.Done():
				t.Fatalf("instance %d: %v", inst, ctx.Err())
			}
		}
		if got := assertAgreement(t, results); got != n {
			t.Fatalf("instance %d: %d of %d nodes decided", inst, got, n)
		}
		cl.Stop()
		cl.Stop() // idempotent
	}
	if err := clusters[0].Start(ctx); err == nil {
		t.Fatal("restarting a stopped cluster succeeded")
	}
}

// TestMembersSplitCluster runs one consensus instance as three separate
// Cluster objects — one member each, sharing nothing but the transport —
// the exact shape of a multi-process deployment (each OS process runs
// its own member over a peer-configured TCP endpoint).
func TestMembersSplitCluster(t *testing.T) {
	const n, tt = 3, 1
	tc, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tc.Close() })

	type outcome struct {
		id      model.ProcessID
		results []runtime.NodeResult
		err     error
	}
	outcomes := make(chan outcome, n)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		id := model.ProcessID(i + 1)
		ep, err := tc.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		eps := make([]transport.Transport, n)
		eps[i] = ep
		var members model.PIDSet
		members.Add(id)
		cl, err := runtime.New(runtime.Config{
			N: n, T: tt,
			Factory:     core.New(core.Options{}),
			Proposals:   props(n),
			Endpoints:   eps,
			Members:     members,
			BaseTimeout: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			res, err := cl.Run(ctx)
			outcomes <- outcome{id: id, results: res, err: err}
		}()
	}

	var (
		val  model.Value
		have bool
	)
	for i := 0; i < n; i++ {
		o := <-outcomes
		if o.err != nil {
			t.Fatalf("member p%d: %v", o.id, o.err)
		}
		r := o.results[o.id-1]
		v, ok := r.Decision.Get()
		if !ok {
			t.Fatalf("member p%d did not decide", o.id)
		}
		if !have {
			val, have = v, true
		} else if v != val {
			t.Fatalf("member p%d decided %d, others decided %d", o.id, v, val)
		}
		// Non-member entries are placeholders.
		for j, other := range o.results {
			if _, ok := other.Decision.Get(); ok && model.ProcessID(j+1) != o.id {
				t.Fatalf("member p%d reported a decision for remote p%d", o.id, j+1)
			}
		}
	}
}

// TestMembersValidation covers the member-subset error cases.
func TestMembersValidation(t *testing.T) {
	hub, err := transport.NewHub(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	ep2, err := hub.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.Config{
		N: 3, T: 1,
		Factory:   core.New(core.Options{}),
		Proposals: props(3),
	}

	// A member with a nil endpoint is rejected.
	cfg := base
	cfg.Endpoints = make([]transport.Transport, 3)
	cfg.Members.Add(1)
	if _, err := runtime.New(cfg); err == nil {
		t.Fatal("nil member endpoint accepted")
	}
	// Members outside 1..N are rejected.
	cfg = base
	cfg.Endpoints = []transport.Transport{nil, ep2, nil}
	cfg.Members.Add(2)
	cfg.Members.Add(5)
	if _, err := runtime.New(cfg); err == nil {
		t.Fatal("member outside the system accepted")
	}
	// Crashing a non-member fails; crashing a member works.
	cfg = base
	cfg.Endpoints = []transport.Transport{nil, ep2, nil}
	cfg.Members = 0
	cfg.Members.Add(2)
	cl, err := runtime.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Crash(1); err == nil {
		t.Fatal("crashed a process of another OS process")
	}
	if err := cl.Crash(2); err != nil {
		t.Fatalf("crash own member: %v", err)
	}
}
