// Package runtime executes the round-based algorithms as live goroutine
// processes over an asynchronous transport — the engineering counterpart
// of the lockstep simulator. Each process runs its own round loop: it
// broadcasts its round message, collects inbound messages until its wait
// policy is satisfied (at least n−t round messages, plus — under the
// A_{t+2}/◇P discipline — every process its timeout detector does not
// suspect), and hands the receive set to the algorithm. Timeouts adapt
// (doubling on every false suspicion), so an eventually synchronous
// network yields exactly the ES behaviour the paper assumes: finitely many
// false suspicions, then synchrony.
//
// The runtime is where indulgence becomes visible as an engineering
// property: injected delays cause false suspicions and slow decisions but
// never endanger agreement.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"indulgence/internal/core"
	"indulgence/internal/fd"
	"indulgence/internal/model"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// Config describes a live cluster.
type Config struct {
	// N and T describe the system; T bounds the crashes the run must
	// tolerate.
	N, T int
	// Factory builds each process's algorithm.
	Factory model.Factory
	// Proposals holds one proposal per process.
	Proposals []model.Value
	// Endpoints holds one transport endpoint per process (Endpoints[id-1]
	// must answer Self() == id).
	Endpoints []transport.Transport
	// WaitPolicy selects the receive discipline (default WaitUnsuspected,
	// the A_{t+2} discipline; WaitQuorum is the ◇S discipline of Fig. 3).
	WaitPolicy core.WaitPolicy
	// BaseTimeout is the initial per-process suspicion timeout (default
	// 25ms). It doubles on every false suspicion.
	BaseTimeout time.Duration
	// MaxRounds aborts a node after this many rounds (default 256).
	MaxRounds model.Round
}

// NodeResult is one process's outcome.
type NodeResult struct {
	// ID identifies the process.
	ID model.ProcessID
	// Decision is the decided value (⊥ if none).
	Decision model.OptValue
	// Round is the round at the end of which the process decided.
	Round model.Round
	// Elapsed is the wall-clock time from start to decision.
	Elapsed time.Duration
	// Crashed reports whether the process was crash-injected.
	Crashed bool
}

// Cluster is a set of live processes executing one consensus instance.
type Cluster struct {
	cfg       Config
	nodes     []*node
	decisions chan NodeResult

	mu      sync.Mutex
	started bool
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New validates the configuration and assembles a cluster (no goroutines
// start until Run).
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("runtime: need at least 2 processes, got %d", cfg.N)
	}
	if len(cfg.Proposals) != cfg.N || len(cfg.Endpoints) != cfg.N {
		return nil, fmt.Errorf("runtime: need %d proposals and endpoints, got %d and %d",
			cfg.N, len(cfg.Proposals), len(cfg.Endpoints))
	}
	if cfg.Factory == nil {
		return nil, errors.New("runtime: nil factory")
	}
	if cfg.WaitPolicy == 0 {
		cfg.WaitPolicy = core.WaitUnsuspected
	}
	if cfg.BaseTimeout == 0 {
		cfg.BaseTimeout = 25 * time.Millisecond
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 256
	}
	c := &Cluster{
		cfg:       cfg,
		nodes:     make([]*node, cfg.N),
		decisions: make(chan NodeResult, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		id := model.ProcessID(i + 1)
		if cfg.Endpoints[i].Self() != id {
			return nil, fmt.Errorf("runtime: endpoint %d answers Self()=%d", id, cfg.Endpoints[i].Self())
		}
		alg, err := cfg.Factory(model.ProcessContext{Self: id, N: cfg.N, T: cfg.T}, cfg.Proposals[i])
		if err != nil {
			return nil, fmt.Errorf("runtime: build algorithm for p%d: %w", id, err)
		}
		c.nodes[i] = &node{
			id:        id,
			cfg:       &c.cfg,
			alg:       alg,
			ep:        cfg.Endpoints[i],
			detector:  fd.NewTimeoutDetector(cfg.BaseTimeout),
			buffered:  make(map[model.Round][]model.Message),
			decisions: c.decisions,
		}
	}
	return c, nil
}

// Crash kills process p: its goroutine stops sending and receiving, like a
// crash-stop failure. Safe to call at any time after Run has started.
func (c *Cluster) Crash(p model.ProcessID) error {
	if p < 1 || int(p) > c.cfg.N {
		return fmt.Errorf("runtime: no process %d", p)
	}
	c.nodes[p-1].crash()
	return nil
}

// Run starts every process and blocks until all non-crashed processes have
// decided, the context is done, or every node has stopped. It returns one
// result per process.
func (c *Cluster) Run(ctx context.Context) ([]NodeResult, error) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return nil, errors.New("runtime: cluster already ran")
	}
	c.started = true
	runCtx, cancel := context.WithCancel(ctx)
	c.cancel = cancel
	for _, n := range c.nodes {
		n.start(runCtx, &c.wg)
	}
	c.mu.Unlock()
	defer func() {
		cancel()
		c.wg.Wait()
	}()

	results := make([]NodeResult, c.cfg.N)
	for i := range results {
		results[i] = NodeResult{ID: model.ProcessID(i + 1)}
	}
	pending := c.cfg.N
	for pending > 0 {
		select {
		case res := <-c.decisions:
			results[res.ID-1] = res
			pending--
		case <-ctx.Done():
			// Collect whatever is already queued, then report.
			for {
				select {
				case res := <-c.decisions:
					results[res.ID-1] = res
					pending--
				default:
					return results, ctx.Err()
				}
			}
		}
	}
	return results, nil
}

// node is one live process.
type node struct {
	id        model.ProcessID
	cfg       *Config
	alg       model.Algorithm
	ep        transport.Transport
	detector  *fd.TimeoutDetector
	buffered  map[model.Round][]model.Message
	late      []model.Message // older-round messages awaiting delivery
	decisions chan<- NodeResult

	crashMu  sync.Mutex
	crashFn  context.CancelFunc
	crashed  bool
	preCrash bool // crash requested before start
}

// start launches the node's round loop.
func (n *node) start(ctx context.Context, wg *sync.WaitGroup) {
	nodeCtx, cancel := context.WithCancel(ctx)
	n.crashMu.Lock()
	n.crashFn = cancel
	pre := n.preCrash
	n.crashMu.Unlock()
	if pre {
		cancel()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		n.loop(nodeCtx)
	}()
}

// crash cancels the node's context.
func (n *node) crash() {
	n.crashMu.Lock()
	defer n.crashMu.Unlock()
	n.crashed = true
	if n.crashFn != nil {
		n.crashFn()
	} else {
		n.preCrash = true
	}
}

// report emits the node's terminal result exactly once.
func (n *node) report(decided model.OptValue, round model.Round, start time.Time) {
	n.crashMu.Lock()
	crashed := n.crashed
	n.crashMu.Unlock()
	n.decisions <- NodeResult{
		ID:       n.id,
		Decision: decided,
		Round:    round,
		Elapsed:  time.Since(start),
		Crashed:  crashed,
	}
}

// loop is the node's round engine.
func (n *node) loop(ctx context.Context) {
	start := time.Now()
	var (
		decided      model.OptValue
		decidedRound model.Round
		reported     bool
	)
	for k := model.Round(1); k <= n.cfg.MaxRounds; k++ {
		if ctx.Err() != nil {
			break
		}
		if err := n.broadcast(k); err != nil {
			break
		}
		msgs, ok := n.collect(ctx, k)
		if !ok {
			break
		}
		n.alg.EndRound(k, msgs)
		if v, has := n.alg.Decision(); has && decided.IsBottom() {
			decided = model.Some(v)
			decidedRound = k
			n.report(decided, decidedRound, start)
			reported = true
			// Keep participating (flooding DECIDE) until the cluster
			// stops us, so slower processes can still decide.
		}
	}
	if !reported {
		n.report(decided, decidedRound, start)
	}
}

// broadcast encodes and sends the round-k message to every process,
// including this one.
func (n *node) broadcast(k model.Round) error {
	payloadMsg := model.Message{From: n.id, Round: k, Payload: n.alg.StartRound(k)}
	frame, err := wire.EncodeMessage(nil, payloadMsg)
	if err != nil {
		return err
	}
	for q := model.ProcessID(1); int(q) <= n.cfg.N; q++ {
		if err := n.ep.Send(q, frame); err != nil {
			return err
		}
	}
	return nil
}

// collect gathers the round-k receive set according to the wait policy:
// at least n−t round-k messages and — under WaitUnsuspected — a message
// from every process the timeout detector does not suspect. Messages from
// earlier rounds buffered since the last receive phase are delivered
// alongside (the ES delayed-message semantics); future-round messages stay
// buffered.
func (n *node) collect(ctx context.Context, k model.Round) ([]model.Message, bool) {
	quorum := n.cfg.N - n.cfg.T
	roundMsgs := n.buffered[k]
	delete(n.buffered, k)
	var heard model.PIDSet
	for _, m := range roundMsgs {
		heard.Add(m.From)
	}

	satisfied := func() bool {
		if len(roundMsgs) < quorum {
			return false
		}
		if n.cfg.WaitPolicy == core.WaitQuorum {
			return true
		}
		unsuspected := model.FullPIDSet(n.cfg.N).Diff(n.detector.Suspected())
		return unsuspected.Diff(heard).IsEmpty()
	}

	roundStart := time.Now()
	ticker := time.NewTicker(n.cfg.BaseTimeout / 4)
	defer ticker.Stop()
	for !satisfied() {
		select {
		case <-ctx.Done():
			return nil, false
		case frame, ok := <-n.ep.Recv():
			if !ok {
				return nil, false
			}
			m, _, err := wire.DecodeMessage(frame)
			if err != nil {
				continue // a malformed frame is dropped, not fatal
			}
			n.detector.Heard(m.From)
			switch {
			case m.Round == k:
				if !heard.Has(m.From) {
					heard.Add(m.From)
					roundMsgs = append(roundMsgs, m)
				}
			case m.Round < k:
				n.late = append(n.late, m)
			default:
				n.buffered[m.Round] = append(n.buffered[m.Round], m)
			}
		case <-ticker.C:
			// Suspect every unheard process whose timeout has expired
			// this round.
			elapsed := time.Since(roundStart)
			for q := model.ProcessID(1); int(q) <= n.cfg.N; q++ {
				if q == n.id || heard.Has(q) {
					continue
				}
				if elapsed >= n.detector.TimeoutFor(q) {
					n.detector.Suspect(q)
				}
			}
		}
	}

	delivered := append(roundMsgs, n.late...)
	n.late = nil
	sort.Slice(delivered, func(a, b int) bool {
		if delivered[a].Round != delivered[b].Round {
			return delivered[a].Round < delivered[b].Round
		}
		return delivered[a].From < delivered[b].From
	})
	return delivered, true
}
