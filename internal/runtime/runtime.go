// Package runtime executes the round-based algorithms as live goroutine
// processes over an asynchronous transport — the engineering counterpart
// of the lockstep simulator. Each process runs its own round loop: it
// broadcasts its round message, collects inbound messages until its wait
// policy is satisfied (at least n−t round messages, plus — under the
// A_{t+2}/◇P discipline — every process its timeout detector does not
// suspect), and hands the receive set to the algorithm. Timeouts adapt
// (doubling on every false suspicion), so an eventually synchronous
// network yields exactly the ES behaviour the paper assumes: finitely many
// false suspicions, then synchrony.
//
// A Cluster executes one consensus instance; everything a Cluster owns —
// round loops, algorithm state machines, timeout detectors, wait policy —
// is instantiated per instance, while the transport endpoints underneath
// may be shared. The service layer exploits exactly this split: it runs
// many Clusters concurrently over virtual endpoints of a transport.Mux,
// so every instance gets fresh per-shard state but all instances share
// one set of sockets and mailboxes. Run blocks for the common
// one-instance case; Start/Decisions/Stop expose the same execution
// non-blockingly for multiplexed callers.
//
// The runtime is where indulgence becomes visible as an engineering
// property: injected delays cause false suspicions and slow decisions but
// never endanger agreement.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"indulgence/internal/chaos/clock"
	"indulgence/internal/core"
	"indulgence/internal/fd"
	"indulgence/internal/metrics"
	"indulgence/internal/model"
	"indulgence/internal/transport"
)

// Config describes a live cluster.
type Config struct {
	// N and T describe the system; T bounds the crashes the run must
	// tolerate.
	N, T int
	// Factory builds each process's algorithm.
	Factory model.Factory
	// Proposals holds one proposal per process.
	Proposals []model.Value
	// Endpoints holds one transport endpoint per process (Endpoints[id-1]
	// must answer Self() == id). Endpoints may be physical (Hub, TCP) or
	// virtual (one instance's streams of a transport.Mux). Entries for
	// processes outside Members may be nil.
	Endpoints []transport.Transport
	// Members selects which of the N processes THIS cluster object
	// actually runs (empty = all of them, the single-process default).
	// A multi-process deployment gives every OS process a cluster with
	// Members = {self}: the remaining N-1 processes run elsewhere and
	// are reached through the transport, so proposals and endpoints are
	// only consulted at member indices.
	Members model.PIDSet
	// WaitPolicy selects the receive discipline (default WaitUnsuspected,
	// the A_{t+2} discipline; WaitQuorum is the ◇S discipline of Fig. 3).
	WaitPolicy core.WaitPolicy
	// BaseTimeout is the initial per-process suspicion timeout (default
	// 25ms). It doubles on every false suspicion.
	BaseTimeout time.Duration
	// MaxRounds aborts a node after this many rounds (default 256).
	MaxRounds model.Round
	// Clock is the time source for round pacing and suspicion timeouts
	// (default the wall clock). The chaos harness injects a virtual
	// clock here, turning timeout behaviour into a deterministic
	// function of the simulated schedule.
	Clock clock.Clock
	// Suspicions, when non-nil, is incremented once per suspicion event
	// any member's timeout detector raises (trusted-to-suspected
	// transitions). The service layer passes its per-group counter here.
	Suspicions *metrics.Counter
}

// NodeResult is one process's outcome.
type NodeResult struct {
	// ID identifies the process.
	ID model.ProcessID
	// Decision is the decided value (⊥ if none).
	Decision model.OptValue
	// Round is the round at the end of which the process decided.
	Round model.Round
	// Elapsed is the wall-clock time from start to decision.
	Elapsed time.Duration
	// Crashed reports whether the process was crash-injected.
	Crashed bool
	// Suspicions is the number of suspicion events this process's
	// timeout detector raised by the time the result was reported — the
	// trust signal the adaptive control plane aggregates per instance
	// (0 in a synchronous trusted run).
	Suspicions int
}

// Cluster is a set of live processes executing one consensus instance.
type Cluster struct {
	cfg       Config
	nodes     []*node
	decisions chan NodeResult

	mu      sync.Mutex
	started bool
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New validates the configuration and assembles a cluster (no goroutines
// start until Start or Run).
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("runtime: need at least 2 processes, got %d", cfg.N)
	}
	if len(cfg.Proposals) != cfg.N || len(cfg.Endpoints) != cfg.N {
		return nil, fmt.Errorf("runtime: need %d proposals and endpoints, got %d and %d",
			cfg.N, len(cfg.Proposals), len(cfg.Endpoints))
	}
	if cfg.Factory == nil {
		return nil, errors.New("runtime: nil factory")
	}
	if cfg.WaitPolicy == 0 {
		cfg.WaitPolicy = core.WaitUnsuspected
	}
	if cfg.BaseTimeout == 0 {
		cfg.BaseTimeout = 25 * time.Millisecond
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 256
	}
	cfg.Clock = clock.Or(cfg.Clock)
	if cfg.Members.IsEmpty() {
		cfg.Members = model.FullPIDSet(cfg.N)
	}
	if outside := cfg.Members.Diff(model.FullPIDSet(cfg.N)); !outside.IsEmpty() {
		return nil, fmt.Errorf("runtime: members %v outside 1..%d", outside, cfg.N)
	}
	c := &Cluster{
		cfg:       cfg,
		nodes:     make([]*node, cfg.N),
		decisions: make(chan NodeResult, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		id := model.ProcessID(i + 1)
		if !cfg.Members.Has(id) {
			continue
		}
		if cfg.Endpoints[i] == nil {
			return nil, fmt.Errorf("runtime: member p%d has a nil endpoint", id)
		}
		if cfg.Endpoints[i].Self() != id {
			return nil, fmt.Errorf("runtime: endpoint %d answers Self()=%d", id, cfg.Endpoints[i].Self())
		}
		alg, err := cfg.Factory(model.ProcessContext{Self: id, N: cfg.N, T: cfg.T}, cfg.Proposals[i])
		if err != nil {
			return nil, fmt.Errorf("runtime: build algorithm for p%d: %w", id, err)
		}
		detector := fd.NewTimeoutDetectorClock(cfg.BaseTimeout, cfg.Clock)
		detector.Instrument(cfg.Suspicions)
		c.nodes[i] = &node{
			id:        id,
			cfg:       &c.cfg,
			alg:       alg,
			ep:        cfg.Endpoints[i],
			detector:  detector,
			buffered:  make(map[model.Round][]model.Message),
			decisions: c.decisions,
		}
	}
	return c, nil
}

// Crash kills process p: its goroutine stops sending and receiving, like a
// crash-stop failure. Safe to call at any time after Start has run. Only
// members of this cluster object can be crashed through it.
func (c *Cluster) Crash(p model.ProcessID) error {
	if p < 1 || int(p) > c.cfg.N {
		return fmt.Errorf("runtime: no process %d", p)
	}
	if c.nodes[p-1] == nil {
		return fmt.Errorf("runtime: process %d runs in another OS process", p)
	}
	c.nodes[p-1].crash()
	return nil
}

// Start launches every process and returns immediately. Each process
// delivers exactly one NodeResult on Decisions: at its first decision, or
// — if it stops without one (crash, context cancellation, MaxRounds) — at
// exit. The caller must eventually call Stop to release the goroutines; a
// decided node keeps flooding DECIDE until then so that slower processes
// still decide.
func (c *Cluster) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("runtime: cluster already ran")
	}
	c.started = true
	runCtx, cancel := context.WithCancel(ctx)
	c.cancel = cancel
	for _, n := range c.nodes {
		if n != nil {
			n.start(runCtx, &c.wg)
		}
	}
	return nil
}

// Decisions returns the channel carrying one NodeResult per process. The
// channel is buffered for the whole cluster and never closed.
func (c *Cluster) Decisions() <-chan NodeResult { return c.decisions }

// Stop cancels every process and waits for their goroutines to exit. It
// is idempotent and safe to call concurrently with Decisions readers.
func (c *Cluster) Stop() {
	c.mu.Lock()
	cancel := c.cancel
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	c.wg.Wait()
}

// Run starts every member process and blocks until all of them have
// delivered a result, the context is done, or every node has stopped. It
// returns one result per process; entries for processes running in other
// OS processes (outside Members) are zero-valued placeholders.
func (c *Cluster) Run(ctx context.Context) ([]NodeResult, error) {
	if err := c.Start(ctx); err != nil {
		return nil, err
	}
	defer c.Stop()

	results := make([]NodeResult, c.cfg.N)
	for i := range results {
		results[i] = NodeResult{ID: model.ProcessID(i + 1)}
	}
	pending := c.cfg.Members.Len()
	for pending > 0 {
		select {
		case res := <-c.decisions:
			results[res.ID-1] = res
			pending--
		case <-ctx.Done():
			// Collect whatever is already queued, then report.
			for {
				select {
				case res := <-c.decisions:
					results[res.ID-1] = res
					pending--
				default:
					return results, ctx.Err()
				}
			}
		}
	}
	return results, nil
}
