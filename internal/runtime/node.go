package runtime

import (
	"context"
	"sort"
	"sync"
	"time"

	"indulgence/internal/core"
	"indulgence/internal/fd"
	"indulgence/internal/model"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// node is one live process: the per-shard unit of the runtime. Each node
// owns its round loop, its algorithm state machine, and its timeout
// detector; only the transport endpoint underneath (and, when the
// endpoint is a mux stream, the sockets and mailboxes behind it) is
// shared with other instances.
type node struct {
	id        model.ProcessID
	cfg       *Config
	alg       model.Algorithm
	ep        transport.Transport
	detector  *fd.TimeoutDetector
	buffered  map[model.Round][]model.Message
	late      []model.Message // older-round messages awaiting delivery
	decisions chan<- NodeResult

	crashMu  sync.Mutex
	crashFn  context.CancelFunc
	crashed  bool
	preCrash bool // crash requested before start
}

// start launches the node's round loop.
func (n *node) start(ctx context.Context, wg *sync.WaitGroup) {
	nodeCtx, cancel := context.WithCancel(ctx)
	n.crashMu.Lock()
	n.crashFn = cancel
	pre := n.preCrash
	n.crashMu.Unlock()
	if pre {
		cancel()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		n.loop(nodeCtx)
	}()
}

// crash cancels the node's context.
func (n *node) crash() {
	n.crashMu.Lock()
	defer n.crashMu.Unlock()
	n.crashed = true
	if n.crashFn != nil {
		n.crashFn()
	} else {
		n.preCrash = true
	}
}

// report emits the node's terminal result exactly once.
func (n *node) report(decided model.OptValue, round model.Round, start time.Time) {
	n.crashMu.Lock()
	crashed := n.crashed
	n.crashMu.Unlock()
	n.decisions <- NodeResult{
		ID:         n.id,
		Decision:   decided,
		Round:      round,
		Elapsed:    n.cfg.Clock.Since(start),
		Crashed:    crashed,
		Suspicions: n.detector.SuspectEvents(),
	}
}

// loop is the node's round engine.
func (n *node) loop(ctx context.Context) {
	start := n.cfg.Clock.Now()
	var (
		decided      model.OptValue
		decidedRound model.Round
		reported     bool
	)
	for k := model.Round(1); k <= n.cfg.MaxRounds; k++ {
		if ctx.Err() != nil {
			break
		}
		if err := n.broadcast(k); err != nil {
			break
		}
		msgs, ok := n.collect(ctx, k)
		if !ok {
			break
		}
		n.alg.EndRound(k, msgs)
		if v, has := n.alg.Decision(); has && decided.IsBottom() {
			decided = model.Some(v)
			decidedRound = k
			n.report(decided, decidedRound, start)
			reported = true
			// Keep participating (flooding DECIDE) until the cluster
			// stops us, so slower processes can still decide.
		}
	}
	if !reported {
		n.report(decided, decidedRound, start)
	}
}

// broadcast encodes and sends the round-k message to every process,
// including this one.
func (n *node) broadcast(k model.Round) error {
	payloadMsg := model.Message{From: n.id, Round: k, Payload: n.alg.StartRound(k)}
	frame, err := wire.EncodeMessage(nil, payloadMsg)
	if err != nil {
		return err
	}
	for q := model.ProcessID(1); int(q) <= n.cfg.N; q++ {
		if err := n.ep.Send(q, frame); err != nil {
			return err
		}
	}
	return nil
}

// collect gathers the round-k receive set according to the wait policy:
// at least n−t round-k messages and — under WaitUnsuspected — a message
// from every process the timeout detector does not suspect. Messages from
// earlier rounds buffered since the last receive phase are delivered
// alongside (the ES delayed-message semantics); future-round messages stay
// buffered.
func (n *node) collect(ctx context.Context, k model.Round) ([]model.Message, bool) {
	quorum := n.cfg.N - n.cfg.T
	roundMsgs := n.buffered[k]
	delete(n.buffered, k)
	var heard model.PIDSet
	for _, m := range roundMsgs {
		heard.Add(m.From)
	}

	satisfied := func() bool {
		if len(roundMsgs) < quorum {
			return false
		}
		if n.cfg.WaitPolicy == core.WaitQuorum {
			return true
		}
		unsuspected := model.FullPIDSet(n.cfg.N).Diff(n.detector.Suspected())
		return unsuspected.Diff(heard).IsEmpty()
	}

	n.detector.BeginRound()
	ticker := n.cfg.Clock.NewTicker(n.cfg.BaseTimeout / 4)
	defer ticker.Stop()
	for !satisfied() {
		select {
		case <-ctx.Done():
			return nil, false
		case frame, ok := <-n.ep.Recv():
			if !ok {
				return nil, false
			}
			m, _, err := wire.DecodeMessage(frame)
			if err != nil {
				continue // a malformed frame is dropped, not fatal
			}
			n.detector.Heard(m.From)
			switch {
			case m.Round == k:
				if !heard.Has(m.From) {
					heard.Add(m.From)
					roundMsgs = append(roundMsgs, m)
				}
			case m.Round < k:
				n.late = append(n.late, m)
			default:
				n.buffered[m.Round] = append(n.buffered[m.Round], m)
			}
		case <-ticker.C():
			// Suspect every unheard process whose timeout has expired
			// this round (the detector measures from BeginRound on the
			// cluster's clock).
			n.detector.SuspectOverdue(n.cfg.N, n.id, heard)
		}
	}

	delivered := append(roundMsgs, n.late...)
	n.late = nil
	sort.Slice(delivered, func(a, b int) bool {
		if delivered[a].Round != delivered[b].Round {
			return delivered[a].Round < delivered[b].Round
		}
		return delivered[a].From < delivered[b].From
	})
	return delivered, true
}
