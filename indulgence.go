// Package indulgence is a library-grade reproduction of Dutta & Guerraoui,
// "The inherent price of indulgence" (PODC 2002; Distributed Computing
// 18(1):85–98, 2005): the tight t+2-round bound on the time complexity of
// indulgent consensus in the round-based eventually synchronous model.
//
// The package is the public façade over the implementation in internal/:
//
//   - the round-based models SCS and ES, adversary schedules and a
//     deterministic lockstep simulator;
//   - the paper's algorithms — A_{t+2} with its failure-free optimization
//     and ◇S adaptation, and A_{f+2} — plus the baselines they are
//     measured against (FloodSet, FloodSetWS, a CT-style rotating
//     coordinator, Hurfin–Raynal, leader-based AMR);
//   - the lower-bound machinery: exhaustive serial-run exploration,
//     valency analysis and the executable Claim 5.1 constructions;
//   - a live runtime executing the same algorithms as goroutine processes
//     over in-memory or TCP transports with adaptive timeout failure
//     detection;
//   - a consensus service multiplexing many concurrent batched instances
//     over one cluster's connections, with per-proposal decision futures
//     and latency accounting;
//   - a durable decision journal (append-only, fsync-batched, CRC-framed
//     segments) that makes the service restartable: decisions are
//     journaled before their futures resolve, and recovery replays the
//     log instead of re-running consensus;
//   - the experiment suite regenerating every quantitative claim of the
//     paper (see EXPERIMENTS.md).
//
// Quick start:
//
//	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})
//	res, err := indulgence.Simulate(indulgence.SimConfig{
//	    Synchrony: indulgence.ES,
//	    Schedule:  indulgence.FailureFree(5, 2),
//	    Proposals: []indulgence.Value{3, 1, 4, 1, 5},
//	    Factory:   factory,
//	})
//	// every process decides value 1 at round t+2 = 4
package indulgence

import (
	"io"

	"indulgence/internal/adapt"
	"indulgence/internal/baseline"
	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/experiments"
	"indulgence/internal/journal"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/sched"
	"indulgence/internal/service"
	"indulgence/internal/sim"
	"indulgence/internal/trace"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// Core model types.
type (
	// ProcessID identifies a process (1..n).
	ProcessID = model.ProcessID
	// Value is a proposal/decision value (totally ordered).
	Value = model.Value
	// Round is a 1-based round number.
	Round = model.Round
	// Synchrony selects the round-based model (SCS or ES).
	Synchrony = model.Synchrony
	// OptValue is a value or the paper's ⊥.
	OptValue = model.OptValue
	// PIDSet is a set of process identities.
	PIDSet = model.PIDSet
	// ProcessContext is the static per-process configuration.
	ProcessContext = model.ProcessContext
	// Algorithm is the deterministic round state machine contract.
	Algorithm = model.Algorithm
	// Factory constructs one process's algorithm instance.
	Factory = model.Factory
	// Message is a round-stamped message.
	Message = model.Message
	// Payload is the algorithm-specific message content.
	Payload = model.Payload
)

// Model constants.
const (
	// SCS is the synchronous crash-stop model.
	SCS = model.SCS
	// ES is the eventually synchronous model.
	ES = model.ES
)

// Some wraps a concrete value into an OptValue.
func Some(v Value) OptValue { return model.Some(v) }

// Bottom returns the paper's ⊥.
func Bottom() OptValue { return model.Bottom() }

// PIDSetOf returns the set containing the given processes.
func PIDSetOf(ps ...ProcessID) PIDSet { return model.NewPIDSet(ps...) }

// Schedules and simulation.
type (
	// Schedule is a complete adversary script for one run.
	Schedule = sched.Schedule
	// ScheduleOption configures a new Schedule.
	ScheduleOption = sched.Option
	// RandomOpts parameterizes the random schedule generators.
	RandomOpts = sched.RandomOpts
	// SimConfig describes one simulated run.
	SimConfig = sim.Config
	// SimResult is one simulated run's outcome.
	SimResult = sim.Result
	// Decision is one process's decision.
	Decision = sim.Decision
	// RunTrace is the full recorded history of a run.
	RunTrace = trace.Run
	// Report is a consensus property-check report.
	Report = check.Report
)

// NewSchedule returns an empty (failure-free, synchronous) schedule for n
// processes tolerating t crashes. Build adversaries with its Crash,
// CrashSilent, CrashWithReceivers, Delay and Drop methods.
func NewSchedule(n, t int, opts ...ScheduleOption) *Schedule { return sched.New(n, t, opts...) }

// WithGSR sets a schedule's global stabilization round (the paper's K).
func WithGSR(k Round) ScheduleOption { return sched.WithGSR(k) }

// Schedule generators (see package sched for the full documentation).
func FailureFree(n, t int) *Schedule { return sched.FailureFree(n, t) }

// RandomSynchronous samples a synchronous schedule with random crashes.
func RandomSynchronous(n, t int, o RandomOpts) *Schedule { return sched.RandomSynchronous(n, t, o) }

// RandomES samples an eventually synchronous schedule stabilizing at gsr.
func RandomES(n, t int, gsr Round, o RandomOpts) *Schedule { return sched.RandomES(n, t, gsr, o) }

// KillCoordinators crashes the first t phase coordinators silently.
func KillCoordinators(n, t, roundsPerPhase int) *Schedule {
	return sched.KillCoordinators(n, t, roundsPerPhase)
}

// DelayedSenderPrefix delays one process's messages for k rounds.
func DelayedSenderPrefix(n, t int, k Round, victim ProcessID) *Schedule {
	return sched.DelayedSenderPrefix(n, t, k, victim)
}

// SplitBrain is the t = n/2 partition schedule of the resilience-price
// experiment.
func SplitBrain(n int, splitRounds Round) *Schedule { return sched.SplitBrain(n, splitRounds) }

// DivergencePrefixFlood is the adversarial asynchronous prefix that keeps
// A_{f+2}'s estimates diverged for k rounds (n = 3t+1; pair it with
// DivergenceProposalsFlood).
func DivergencePrefixFlood(t int, k Round) *Schedule { return sched.DivergencePrefixFlood(t, k) }

// DivergenceProposalsFlood is the initial configuration matching
// DivergencePrefixFlood.
func DivergenceProposalsFlood(t int) []Value { return sched.DivergenceProposalsFlood(t) }

// DivergencePrefixLeader is the adversarial asynchronous prefix that keeps
// AMR's estimates diverged for k rounds (n = 3t+1; pair it with
// DivergenceProposalsLeader).
func DivergencePrefixLeader(t int, k Round) *Schedule { return sched.DivergencePrefixLeader(t, k) }

// DivergenceProposalsLeader is the initial configuration matching
// DivergencePrefixLeader.
func DivergenceProposalsLeader(t int) []Value { return sched.DivergenceProposalsLeader(t) }

// Simulator executes many runs while reusing scratch state (pending
// queues, inboxes, algorithm tables) — the allocation-lean substrate under
// the exhaustive explorer and the experiment sweeps. Not safe for
// concurrent use; SimulateBatch spawns one per worker.
type Simulator = sim.Simulator

// NewSimulator returns a reusable simulator.
func NewSimulator() *Simulator { return sim.NewSimulator() }

// Simulate executes one run under a schedule in the lockstep simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulateBatch executes many independent runs concurrently on a bounded
// worker pool (workers <= 0 selects GOMAXPROCS) and returns their results
// in input order; the outcome is identical for every worker count.
func SimulateBatch(workers int, cfgs []SimConfig) ([]*SimResult, error) {
	return sim.RunBatch(workers, cfgs)
}

// CheckConsensus verifies validity, uniform agreement and termination of a
// simulated run.
func CheckConsensus(res *SimResult, proposals []Value) Report {
	return check.Consensus(res, proposals)
}

// CheckInstance verifies validity, uniform agreement and termination over
// the live decisions of one consensus instance (a runtime cluster or a
// service shard); decisions[i] belongs to process i+1.
func CheckInstance(decisions []OptValue, proposals []Value, crashed PIDSet) Report {
	return check.Instance(decisions, proposals, crashed)
}

// ReadRunTrace deserializes a recorded run written with
// (*RunTrace).WriteJSON.
func ReadRunTrace(r io.Reader) (*RunTrace, error) { return trace.ReadJSON(r) }

// Algorithms.
type (
	// AtPlus2Options configures A_{t+2} (underlying consensus,
	// failure-free fast path, ablation knobs).
	AtPlus2Options = core.Options
	// AfPlus2Options configures A_{f+2}.
	AfPlus2Options = core.AfOptions
	// WaitPolicy selects the live runtime's receive discipline.
	WaitPolicy = core.WaitPolicy
)

// Live-runtime wait policies (Fig. 3's line-6/15 modification).
const (
	// WaitUnsuspected is the A_{t+2}/◇P discipline.
	WaitUnsuspected = core.WaitUnsuspected
	// WaitQuorum is the A_{◇S} discipline.
	WaitQuorum = core.WaitQuorum
)

// NewAtPlus2 returns the paper's matching algorithm A_{t+2} (Fig. 2):
// global decision at round t+2 in every synchronous run, consensus in
// every ES run (0 < t < n/2).
func NewAtPlus2(opts AtPlus2Options) Factory { return core.New(opts) }

// NewDiamondS returns A_{◇S}, the Fig. 3 adaptation of A_{t+2} to ◇S.
func NewDiamondS() Factory { return core.NewDiamondS() }

// NewAfPlus2 returns A_{f+2} (Fig. 5): global decision by round k+f+2 in
// runs synchronous after round k with f later crashes (t < n/3).
func NewAfPlus2() Factory { return core.NewAfPlus2() }

// NewAfPlus2Opts returns A_{f+2} with explicit options.
func NewAfPlus2Opts(opts AfPlus2Options) Factory { return core.NewAfPlus2Opts(opts) }

// NewFloodSet returns the SCS FloodSet baseline (t+1 rounds).
func NewFloodSet() Factory { return baseline.NewFloodSet() }

// NewFloodSetWS returns the P-based FloodSetWS baseline (t+1 rounds in
// SCS).
func NewFloodSetWS() Factory { return baseline.NewFloodSetWS() }

// NewCT returns the CT-style rotating-coordinator ◇S consensus used as
// A_{t+2}'s underlying module C.
func NewCT() Factory { return baseline.NewCT() }

// NewHurfinRaynal returns the Hurfin–Raynal ◇S baseline (2t+2 rounds in
// worst-case synchronous runs).
func NewHurfinRaynal() Factory { return baseline.NewHurfinRaynal() }

// NewAMR returns the leader-based Mostefaoui–Raynal baseline (k+2f+2
// eventual decision, t < n/3).
func NewAMR() Factory { return baseline.NewAMR() }

// Lower-bound machinery.
type (
	// ExploreConfig parameterizes serial-run exploration.
	ExploreConfig = lowerbound.Config
	// ExploreResult reports worst-case rounds and witnesses.
	ExploreResult = lowerbound.Result
	// SubsetMode selects receiver-subset enumeration.
	SubsetMode = lowerbound.SubsetMode
	// Claim51 is the executable Fig. 1 construction.
	Claim51 = lowerbound.Claim51
	// Claim51Report is its verification report.
	Claim51Report = lowerbound.VerifyReport
	// Valency classifies configurations by reachable decisions.
	Valency = lowerbound.Valency
)

// Subset enumeration modes.
const (
	// PrefixSubsets is the proof-style enumeration.
	PrefixSubsets = lowerbound.PrefixSubsets
	// AllSubsets is the exhaustive enumeration.
	AllSubsets = lowerbound.AllSubsets
)

// Explore measures the worst-case global decision round of an algorithm
// over every serial run in the configured family.
func Explore(cfg ExploreConfig) (*ExploreResult, error) { return lowerbound.Explore(cfg) }

// BuildClaim51 constructs the five Fig. 1 runs for an algorithm.
func BuildClaim51(factory Factory, n, t int, proposals []Value) (*Claim51, error) {
	return lowerbound.BuildClaim51(factory, n, t, proposals)
}

// ClassifyInitial computes the valency of an initial configuration.
func ClassifyInitial(cfg ExploreConfig) (Valency, error) { return lowerbound.ClassifyInitial(cfg) }

// Live runtime.
type (
	// ClusterConfig describes a live cluster.
	ClusterConfig = runtime.Config
	// Cluster is a set of live goroutine processes.
	Cluster = runtime.Cluster
	// NodeResult is one live process's outcome.
	NodeResult = runtime.NodeResult
	// Transport moves frames between live processes.
	Transport = transport.Transport
	// Hub is the in-memory transport with delay injection.
	Hub = transport.Hub
	// TCPCluster is the in-process TCP loopback cluster (one endpoint
	// per process, ephemeral ports).
	TCPCluster = transport.TCPCluster
	// TCPEndpoint is one process of a multi-process TCP cluster:
	// listener/dialer split, handshake-identified connections, bounded
	// -backoff reconnect.
	TCPEndpoint = transport.TCPEndpoint
	// TCPOptions tunes a multi-process TCP endpoint (timeouts, backoff).
	TCPOptions = transport.TCPOptions
	// PeerTransportConfig is one process's view of a multi-process
	// cluster: self ID plus the addressed peer list.
	PeerTransportConfig = transport.PeerConfig
	// TransportPeer is one member of the peer list.
	TransportPeer = transport.Peer
)

// NewHub returns an in-memory transport hub for n processes.
func NewHub(n int) (*Hub, error) { return transport.NewHub(n) }

// NewTCPCluster starts n fully connected TCP loopback endpoints.
func NewTCPCluster(n int) (*TCPCluster, error) { return transport.NewTCPCluster(n) }

// NewTCPEndpoint starts one process of a multi-process TCP cluster from
// its peer config (listen on the self entry, dial the rest lazily with
// reconnect).
func NewTCPEndpoint(cfg PeerTransportConfig, opts TCPOptions) (*TCPEndpoint, error) {
	return transport.NewTCPEndpoint(cfg, opts)
}

// ParsePeers parses a `p1=host:port,p2=host:port,...` peer list into a
// transport config for the given self ID.
func ParsePeers(self ProcessID, cluster, spec string) (PeerTransportConfig, error) {
	return transport.ParsePeers(self, cluster, spec)
}

// LoadPeerFile reads a peer config file (one pN=host:port entry per
// line, # comments allowed).
func LoadPeerFile(self ProcessID, cluster, path string) (PeerTransportConfig, error) {
	return transport.LoadPeerFile(self, cluster, path)
}

// NewCluster assembles a live cluster (started with its Run method).
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return runtime.New(cfg) }

// Consensus service (many concurrent instances over one live cluster).
type (
	// ServiceConfig describes a consensus service: batching, instance
	// sharding and per-instance runtime parameters.
	ServiceConfig = service.Config
	// Service multiplexes batched consensus instances over one cluster.
	Service = service.Service
	// ServiceDecision is the resolution of a batched proposal.
	ServiceDecision = service.Decision
	// ServiceFuture resolves to the decision of a proposal's instance.
	ServiceFuture = service.Future
	// ServiceStats is a snapshot of service counters and latency
	// percentiles.
	ServiceStats = service.Stats
	// Mux multiplexes consensus instances over one transport endpoint.
	Mux = transport.Mux
	// PeerService is one process's member of a multi-process consensus
	// cluster (one `serve -peers` per OS process).
	PeerService = service.PeerService
	// PeerServiceOptions describes one multi-process member.
	PeerServiceOptions = service.PeerOptions
	// AdaptiveConfig describes the feedback control plane attached via
	// ServiceConfig.Adaptive / PeerServiceOptions.Adaptive: AIMD
	// batch/linger tuning, per-instance algorithm selection, and
	// overload admission control.
	AdaptiveConfig = adapt.Config
	// AdaptiveStats is the control plane's snapshot inside ServiceStats.
	AdaptiveStats = adapt.Stats
)

// ErrOverload reports a proposal shed by the adaptive service's
// admission control; callers back off and retry.
var ErrOverload = adapt.ErrOverload

// NewService starts a consensus service over one endpoint per process.
func NewService(cfg ServiceConfig, endpoints []Transport) (*Service, error) {
	return service.New(cfg, endpoints)
}

// NewPeerService starts one member of an n-process cluster over its own
// transport endpoint; the other members run in other OS processes.
func NewPeerService(cfg PeerServiceOptions, n int, ep Transport) (*PeerService, error) {
	return service.NewPeer(cfg, n, ep)
}

// NewMux multiplexes instance-addressed streams over one endpoint.
func NewMux(ep Transport) *Mux { return transport.NewMux(ep) }

// Durable decision journal (crash-restart recovery for the service).
type (
	// Journal is the append-only, fsync-batched decision log a service
	// journals into before resolving futures.
	Journal = journal.Journal
	// JournalOptions configures a journal (segment rotation, fsync).
	JournalOptions = journal.Options
	// JournalStats is a snapshot of journal counters and fsync latency.
	JournalStats = journal.Stats
	// JournalEntry is one replayed journal record (start or decision).
	JournalEntry = journal.Entry
	// JournalReplayInfo summarizes one read of a journal directory.
	JournalReplayInfo = journal.ReplayInfo
	// DecisionRecord is the durable record of one decided instance.
	DecisionRecord = wire.DecisionRecord
	// StartRecord is the durable claim of an instance ID, optionally
	// tagged with the algorithm the instance was launched with.
	StartRecord = wire.StartRecord
)

// OpenJournal opens (creating if needed) the decision journal at dir,
// recovering its decision index and instance frontier; pass the journal
// to a ServiceConfig to make the service restartable.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	return journal.Open(dir, opts)
}

// ReplayJournal iterates every intact record of a journal directory in
// append order, tolerating a torn tail on the final segment exactly as
// recovery does.
func ReplayJournal(dir string, fn func(JournalEntry) error) (JournalReplayInfo, error) {
	return journal.Replay(dir, fn)
}

// CheckReplay cross-checks a journal's decision records and start
// claims against live observations (instance → resolved value),
// extending uniform agreement — including per-instance algorithm
// choices — across process lifetimes.
func CheckReplay(records []DecisionRecord, starts []StartRecord, live map[uint64]Value) Report {
	return check.Replay(records, starts, live)
}

// Experiments.
type (
	// ExperimentOutcome is one experiment's tables and verdict.
	ExperimentOutcome = experiments.Outcome
)

// RunExperiments executes the full simulator-backed experiment suite
// (E1–E8 and the ablations) with test-sized parameters.
func RunExperiments() ([]*ExperimentOutcome, error) { return experiments.All() }
