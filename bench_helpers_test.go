package indulgence_test

import (
	"math/rand"

	"indulgence/internal/model"
	"indulgence/internal/payload"
)

// benchEstHalt builds the payload used by the codec micro-benchmark.
func benchEstHalt() model.Payload {
	return payload.EstHalt{Est: -12345, Halt: model.NewPIDSet(1, 3, 5, 7)}
}

// benchRng returns a fixed-seed source for reproducible benchmarks.
func benchRng() *rand.Rand { return rand.New(rand.NewSource(1)) }
