package indulgence_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"indulgence"
)

// TestPublicAPIQuickstart walks the README quick-start flow through the
// public façade only.
func TestPublicAPIQuickstart(t *testing.T) {
	proposals := []indulgence.Value{3, 1, 4, 1, 5}
	res, err := indulgence.Simulate(indulgence.SimConfig{
		Synchrony: indulgence.ES,
		Schedule:  indulgence.FailureFree(5, 2),
		Proposals: proposals,
		Factory:   indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := indulgence.CheckConsensus(res, proposals)
	if !rep.OK() {
		t.Fatalf("consensus: %v", rep.Err())
	}
	gdr, ok := res.GlobalDecisionRound()
	if !ok || gdr != 4 {
		t.Fatalf("global decision round = %d, want t+2 = 4", gdr)
	}
	for _, d := range res.Decisions {
		if d.Value != 1 {
			t.Fatalf("decided %d, want the minimum 1", d.Value)
		}
	}
}

// TestPublicAPISchedules builds a custom adversary through the façade.
func TestPublicAPISchedules(t *testing.T) {
	s := indulgence.NewSchedule(5, 2, indulgence.WithGSR(3))
	s.CrashWithReceivers(2, 1, indulgence.PIDSetOf(3))
	s.Delay(1, 1, 4, 3)
	proposals := []indulgence.Value{9, 1, 8, 7, 6}
	res, err := indulgence.Simulate(indulgence.SimConfig{
		Synchrony: indulgence.ES,
		Schedule:  s,
		Proposals: proposals,
		Factory:   indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := indulgence.CheckConsensus(res, proposals); !rep.OK() {
		t.Fatalf("consensus: %v", rep.Err())
	}
}

// TestPublicAPIExplore reproduces the t+2 worst case via the façade.
func TestPublicAPIExplore(t *testing.T) {
	res, err := indulgence.Explore(indulgence.ExploreConfig{
		N: 3, T: 1,
		Synchrony:     indulgence.ES,
		Factory:       indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
		Proposals:     []indulgence.Value{1, 2, 3},
		MaxCrashRound: 3,
		Mode:          indulgence.AllSubsets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstRound != 3 {
		t.Fatalf("worst = %d, want 3", res.WorstRound)
	}
}

// TestPublicAPIClaim51 exercises the Fig. 1 construction via the façade.
func TestPublicAPIClaim51(t *testing.T) {
	factory := indulgence.NewAtPlus2(indulgence.AtPlus2Options{})
	c51, err := indulgence.BuildClaim51(factory, 3, 1, []indulgence.Value{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c51.Verify(factory)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("claim 5.1 checks failed: %v", rep.Details)
	}
}

// TestPublicAPIValency exercises the valency classifier via the façade.
func TestPublicAPIValency(t *testing.T) {
	v, err := indulgence.ClassifyInitial(indulgence.ExploreConfig{
		N: 3, T: 1,
		Synchrony:     indulgence.ES,
		Factory:       indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
		Proposals:     []indulgence.Value{0, 0, 0},
		MaxCrashRound: 3,
		Mode:          indulgence.AllSubsets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != indulgence.Valency(1) { // ZeroValent
		t.Fatalf("valency = %v", v)
	}
}

// TestPublicAPILiveCluster runs the in-memory live flow via the façade.
func TestPublicAPILiveCluster(t *testing.T) {
	const n = 4
	hub, err := indulgence.NewHub(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	eps := make([]indulgence.Transport, n)
	for i := 0; i < n; i++ {
		if eps[i], err = hub.Endpoint(indulgence.ProcessID(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := indulgence.NewCluster(indulgence.ClusterConfig{
		N: n, T: 1,
		Factory:     indulgence.NewAfPlus2(),
		Proposals:   []indulgence.Value{4, 3, 2, 1},
		Endpoints:   eps,
		BaseTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var first indulgence.Value
	for i, r := range results {
		v, ok := r.Decision.Get()
		if !ok {
			t.Fatalf("p%d undecided", r.ID)
		}
		if i == 0 {
			first = v
		} else if v != first {
			t.Fatalf("agreement violated: %d vs %d", first, v)
		}
	}
}

// TestPublicAPIOptValue covers the ⊥ helpers.
func TestPublicAPIOptValue(t *testing.T) {
	if !indulgence.Bottom().IsBottom() {
		t.Fatal("Bottom not bottom")
	}
	if v, ok := indulgence.Some(7).Get(); !ok || v != 7 {
		t.Fatal("Some broken")
	}
}

// TestPublicAPIGenerators touches every schedule generator and algorithm
// constructor exposed by the façade.
func TestPublicAPIGenerators(t *testing.T) {
	if s := indulgence.KillCoordinators(5, 2, 2); s.Crashes() != 2 {
		t.Fatal("KillCoordinators")
	}
	if s := indulgence.SplitBrain(4, 6); s.T() != 2 {
		t.Fatal("SplitBrain")
	}
	if s := indulgence.DelayedSenderPrefix(4, 1, 3, 1); s.GSR() != 4 {
		t.Fatal("DelayedSenderPrefix")
	}
	if s := indulgence.DivergencePrefixFlood(1, 3); s.GSR() != 4 {
		t.Fatal("DivergencePrefixFlood")
	}
	if s := indulgence.DivergencePrefixLeader(1, 3); s.GSR() != 4 {
		t.Fatal("DivergencePrefixLeader")
	}
	if len(indulgence.DivergenceProposalsFlood(2)) != 7 || len(indulgence.DivergenceProposalsLeader(2)) != 7 {
		t.Fatal("divergence proposals")
	}
	rng := rand.New(rand.NewSource(3))
	if s := indulgence.RandomSynchronous(5, 2, indulgence.RandomOpts{Rng: rng}); s.GSR() != 1 {
		t.Fatal("RandomSynchronous")
	}
	if s := indulgence.RandomES(5, 2, 4, indulgence.RandomOpts{Rng: rng}); s.GSR() != 4 {
		t.Fatal("RandomES")
	}

	ctx := indulgence.ProcessContext{Self: 1, N: 7, T: 2}
	for _, f := range []indulgence.Factory{
		indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
		indulgence.NewDiamondS(),
		indulgence.NewAfPlus2(),
		indulgence.NewAfPlus2Opts(indulgence.AfPlus2Options{}),
		indulgence.NewFloodSet(),
		indulgence.NewFloodSetWS(),
		indulgence.NewCT(),
		indulgence.NewHurfinRaynal(),
		indulgence.NewAMR(),
	} {
		a, err := f(ctx, 1)
		if err != nil {
			t.Fatalf("constructor: %v", err)
		}
		if a.Name() == "" {
			t.Fatal("empty algorithm name")
		}
	}
}

// TestDecidersCrashAfterFastDecision stresses uniform agreement across the
// fast/slow path boundary: the victim of an asynchronous prefix misses the
// fast decision (its |Halt| > t certificate forces ⊥), and the two fast
// deciders it could have heard DECIDE from crash right away — the
// remaining deciders' DECIDE flood must still reach it.
func TestDecidersCrashAfterFastDecision(t *testing.T) {
	s := indulgence.DelayedSenderPrefix(5, 2, 4, 1) // t+2 = 4, GSR = 5
	s.CrashSilent(2, 5)
	s.CrashSilent(3, 6)
	proposals := []indulgence.Value{0, 1, 1, 1, 1}
	res, err := indulgence.Simulate(indulgence.SimConfig{
		Synchrony: indulgence.ES,
		Schedule:  s,
		Proposals: proposals,
		Factory:   indulgence.NewAtPlus2(indulgence.AtPlus2Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := indulgence.CheckConsensus(res, proposals)
	if !rep.OK() {
		t.Fatalf("consensus: %v", rep.Err())
	}
	// The survivors decided 1 (they never saw p1's 0); so must p1.
	if res.Decisions[0].Value != 1 || !res.Decisions[0].Decided() {
		t.Fatalf("p1 decision: %+v", res.Decisions[0])
	}
	if res.Decisions[0].Round <= 4 {
		t.Fatalf("p1 decided at %d: it cannot have taken the fast path", res.Decisions[0].Round)
	}
}
