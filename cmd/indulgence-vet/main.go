// Command indulgence-vet is the repository's static-analysis
// multichecker: five analyzers that mechanically enforce the contracts
// the substrates rest on — the injected-clock discipline of the live
// stack (clockdiscipline), the seed-hash randomness contract of the
// deterministic packages (seedroll), the ARCHITECTURE.md import DAG
// (layering), the wire marker-byte frame-kind invariant (wiremarker),
// and the virtual clock's same-instant ordering contract inside the
// chaos fabric (taggedtimer). See docs/ARCHITECTURE.md, "Enforced
// contracts", for the rules and the waiver syntax.
//
// Run it through the go command, which stages type information and
// caches results per package:
//
//	go build -o /tmp/indulgence-vet ./cmd/indulgence-vet
//	go vet -vettool=/tmp/indulgence-vet ./...
//
// or directly with package patterns, which re-execs `go vet` with
// itself as the vettool:
//
//	indulgence-vet ./...
//
// Individual analyzers can be selected vet-style, e.g.
// `go vet -vettool=... -layering ./...`.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"indulgence/internal/analysis"
	"indulgence/internal/analysis/clockdiscipline"
	"indulgence/internal/analysis/layering"
	"indulgence/internal/analysis/seedroll"
	"indulgence/internal/analysis/taggedtimer"
	"indulgence/internal/analysis/unitchecker"
	"indulgence/internal/analysis/wiremarker"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clockdiscipline.Analyzer,
		seedroll.Analyzer,
		layering.Analyzer,
		wiremarker.Analyzer,
		taggedtimer.Analyzer,
	}
}

func main() {
	// Convenience mode: invoked with package patterns instead of a vet
	// config, delegate to `go vet` with ourselves as the vettool, so
	// `indulgence-vet ./...` just works.
	if len(os.Args) > 1 && packagePatterns(os.Args[1:]) {
		os.Exit(reexec(os.Args[1:]))
	}
	unitchecker.Main(analyzers()...)
}

// packagePatterns reports whether args look like go package patterns
// rather than the vet-tool protocol's flags and *.cfg argument.
func packagePatterns(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return false
		}
	}
	return true
}

func reexec(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
