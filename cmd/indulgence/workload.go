package main

// Workload-driven load: bench-service's -workload mode (generated
// open-loop cohorts instead of the closed loop, optionally recorded as
// a trace) and the replay-trace subcommand that re-executes and audits
// a recorded trace.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/chaos"
	"indulgence/internal/service"
	"indulgence/internal/stats"
	"indulgence/internal/wire"
	"indulgence/internal/workload"
)

// parseWorkloadSpec resolves a -workload argument: "gen:<seed>[:<maxevents>]"
// derives a mixed-class spec from a bare seed (workload.GenSpec),
// "@FILE" reads a JSON spec from FILE, and anything else parses as
// inline JSON.
func parseWorkloadSpec(arg string) (*workload.Spec, error) {
	switch {
	case strings.HasPrefix(arg, "gen:"):
		parts := strings.Split(arg[len("gen:"):], ":")
		if len(parts) > 2 {
			return nil, fmt.Errorf("workload %q: want gen:<seed>[:<maxevents>]", arg)
		}
		seed, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload %q: seed: %w", arg, err)
		}
		maxEvents := 48
		if len(parts) == 2 {
			if maxEvents, err = strconv.Atoi(parts[1]); err != nil {
				return nil, fmt.Errorf("workload %q: max events: %w", arg, err)
			}
		}
		spec := workload.GenSpec(seed, maxEvents)
		return spec, spec.Validate()
	case strings.HasPrefix(arg, "@"):
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		return workload.ParseSpec(b)
	default:
		return workload.ParseSpec([]byte(arg))
	}
}

// benchWorkload is bench-service's -workload mode: the generated
// open-loop workload replaces the closed loop. A classed spec turns the
// adaptive plane on (per-class admission needs it) and -classes 0
// resolves to the spec's class count. Without -record the run drives
// the real-clock service; -record executes the run deterministically on
// virtual time and writes the trace; -record -live records the
// real-clock run instead.
func benchWorkload(f serviceFlags, wlArg, recordPath string, liveRec bool, limit time.Duration) error {
	spec, err := parseWorkloadSpec(wlArg)
	if err != nil {
		return err
	}
	if spec.Classes() > 1 {
		*f.adaptive = true
	}
	if *f.classes == 0 {
		*f.classes = spec.Classes()
	}
	if liveRec && recordPath == "" {
		return errors.New("-live needs -record FILE")
	}
	if recordPath != "" && !liveRec {
		return recordWorkload(f, spec, recordPath)
	}
	return runWorkloadLive(f, spec, recordPath, limit)
}

// recordWorkload executes the workload deterministically — virtual
// clock, faultless fault fabric, one scheduler thread — and writes the
// trace. The trace header alone reproduces the run, so the file is its
// own fixture: replay-trace re-executes it and must match byte for
// byte.
func recordWorkload(f serviceFlags, spec *workload.Spec, path string) error {
	if *f.groups > 1 && *f.placement != "round-robin" {
		return fmt.Errorf("deterministic recording shards with round-robin placement, not %s (use -record with -live for a real-clock recording)", *f.placement)
	}
	sc := chaos.WorkloadScenario(chaos.Scenario{
		Seed:        spec.Seed,
		N:           *f.n,
		T:           *f.t,
		Algorithm:   *f.algo,
		Adaptive:    *f.adaptive,
		Classes:     *f.classes,
		BaseTimeout: *f.timeout,
		MaxBatch:    *f.batch,
		Linger:      *f.linger,
		MaxInflight: *f.inflight,
		Groups:      *f.groups,
	}, spec)
	tr, res := chaos.RecordTrace(sc.TraceHeader(), chaos.Options{})
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("recorded: %d events -> %d decided, %d shed, %d failed; %v virtual in %v wall\n",
		len(tr.Events), res.Decided, res.Shed, res.Failed,
		res.Virtual.Round(time.Microsecond), res.Wall.Round(time.Millisecond))
	if err := workload.WriteTrace(path, tr); err != nil {
		return err
	}
	fmt.Printf("trace written to %s (replay with: indulgence replay-trace %s)\n", path, path)
	if !res.OK() {
		return fmt.Errorf("recording run violated consensus: %v", res.Violations)
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d proposals failed during recording", res.Failed)
	}
	return nil
}

// runWorkloadLive drives the workload open-loop against the real-clock
// service: every event is submitted at its generated arrival offset
// regardless of how earlier events are faring (unlike the closed loop,
// arrivals do not slow down when the service does — that is what makes
// saturation and class shedding observable). With a record path the run
// streams to a live (non-deterministic) trace.
func runWorkloadLive(f serviceFlags, spec *workload.Spec, recordPath string, limit time.Duration) error {
	events := spec.Events()
	if len(events) == 0 {
		return errors.New("workload generates no events")
	}
	s, err := f.start()
	if err != nil {
		return err
	}
	defer s.cleanup()

	var w *workload.Writer
	if recordPath != "" {
		hdr := wire.TraceHeaderRecord{
			Version:      wire.TraceFormatVersion,
			Seed:         spec.Seed,
			N:            *f.n,
			T:            *f.t,
			Groups:       *f.groups,
			MaxBatch:     *f.batch,
			MaxInflight:  *f.inflight,
			LingerNanos:  int64(*f.linger),
			TimeoutNanos: int64(*f.timeout),
			Algorithm:    *f.algo,
			Placement:    *f.placement,
			Classes:      *f.classes,
			Spec:         spec.JSON(),
		}
		// Deterministic stays false: a real-clock replay reproduces the
		// arrivals, not the outcomes, so replay-trace audits consistency
		// instead of identity.
		if w, err = workload.NewWriter(recordPath, hdr); err != nil {
			return err
		}
		for _, e := range events {
			if err := w.Event(e.Record()); err != nil {
				return err
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	propose := func(e workload.Event) (*service.Future, error) {
		if s.rt != nil {
			return s.rt.ProposeKeyClass(ctx, e.Key, e.Class, e.Value)
		}
		return s.svc.ProposeClass(ctx, e.Class, e.Value)
	}

	outcomes := make([]wire.TraceOutcomeRecord, len(events))
	var wg sync.WaitGroup
	begin := time.Now()
	for _, e := range events {
		if d := e.At - time.Since(begin); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		wg.Add(1)
		go func(e workload.Event) {
			defer wg.Done()
			outcomes[e.Seq] = driveEvent(ctx, propose, e, *f.groups)
		}(e)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	if err := s.close(); err != nil {
		return err
	}
	if w != nil {
		for _, o := range outcomes {
			if err := w.Outcome(o); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("live trace written to %s (audit with: indulgence replay-trace %s)\n", recordPath, recordPath)
	}
	return workloadReport(f, s, spec, events, outcomes, elapsed)
}

// driveEvent submits one workload event and resolves its fate. Shed
// proposals retry on the control plane's own terms — back off
// RetryAfter, give up once the class's retry budget is spent — so
// higher classes, with their larger budgets, outlast overload.
func driveEvent(ctx context.Context, propose func(workload.Event) (*service.Future, error), e workload.Event, groups int) wire.TraceOutcomeRecord {
	rec := wire.TraceOutcomeRecord{Seq: uint64(e.Seq), Class: e.Class}
	start := time.Now()
	retries := 0
	for {
		var dec service.Decision
		fut, err := propose(e)
		if err == nil {
			dec, err = fut.Wait(ctx)
		}
		var oe *adapt.OverloadError
		if errors.As(err, &oe) {
			if retries < oe.Budget {
				retries++
				select {
				case <-time.After(oe.RetryAfter):
					continue
				case <-ctx.Done():
					err = ctx.Err()
				}
			} else {
				rec.Status = wire.TraceShed
				rec.LatencyNanos = int64(time.Since(start))
				return rec
			}
		}
		if err != nil {
			rec.Status = wire.TraceFailed
			rec.LatencyNanos = int64(time.Since(start))
			return rec
		}
		rec.Status = wire.TraceDecided
		rec.Instance = dec.Instance
		rec.Value = dec.Value
		rec.Round = dec.Round
		rec.Batch = dec.Batch
		rec.Class = dec.Class
		if groups > 1 {
			rec.Group = dec.Instance % uint64(groups)
		}
		rec.LatencyNanos = int64(time.Since(start))
		return rec
	}
}

// workloadReport renders the per-class outcome table of one live
// workload run: client-observed latency per SLO class (what the class
// actually bought), service-side admission sheds, and aggregate rates.
// Class attribution follows the submitting event, not the decision —
// a decision carries its batch's class (the highest member), but the
// SLO a client experiences is its own cohort's.
func workloadReport(f serviceFlags, s *started, spec *workload.Spec, events []workload.Event, outcomes []wire.TraceOutcomeRecord, elapsed time.Duration) error {
	classes := spec.Classes()
	if *f.classes > classes {
		classes = *f.classes
	}
	decided, shed, failed := 0, 0, 0
	perDecided := make([]int, classes)
	perShed := make([]int, classes)
	perLat := make([][]time.Duration, classes)
	for i, o := range outcomes {
		c := min(events[i].Class, classes-1)
		switch o.Status {
		case wire.TraceDecided:
			decided++
			perDecided[c]++
			perLat[c] = append(perLat[c], time.Duration(o.LatencyNanos))
		case wire.TraceShed:
			shed++
			perShed[c]++
		default:
			failed++
		}
	}
	title := fmt.Sprintf("workload: %s, n=%d t=%d, %s transport, %d cohorts, %d classes, %d events",
		*f.algo, *f.n, *f.t, *f.trans, len(spec.Cohorts), classes, len(outcomes))
	if *f.groups > 1 {
		title += fmt.Sprintf(", %d groups", *f.groups)
	}
	table := stats.NewTable(title, "metric", "value")
	table.AddRowf("events decided", decided)
	table.AddRowf("events shed (budget spent)", shed)
	table.AddRowf("events failed", failed)
	table.AddRowf("wall time", elapsed.Round(time.Millisecond))
	table.AddRowf("decided/sec", fmt.Sprintf("%.0f", float64(decided)/elapsed.Seconds()))
	for c := classes - 1; c >= 0; c-- {
		sum := stats.SummarizeDurations(perLat[c])
		table.AddRowf(fmt.Sprintf("class %d", c),
			fmt.Sprintf("%d decided, %d shed, p50 %s p90 %s p99 %s p999 %s",
				perDecided[c], perShed[c],
				sum.P50.Round(time.Microsecond), sum.P90.Round(time.Microsecond),
				sum.P99.Round(time.Microsecond), sum.P999.Round(time.Microsecond)))
	}
	var violations []string
	if s.rt != nil {
		roll := s.rt.Snapshot()
		violations = roll.Violations
		table.AddRowf("service sheds (admission)", roll.Overloads)
		if len(roll.OverloadsByClass) > 0 {
			table.AddRowf("sheds by class", fmt.Sprintf("%v", roll.OverloadsByClass))
		}
	} else {
		st := s.svc.Snapshot()
		violations = st.Violations
		table.AddRowf("service sheds (admission)", st.Overloads)
		if len(st.OverloadsByClass) > 0 {
			table.AddRowf("sheds by class", fmt.Sprintf("%v", st.OverloadsByClass))
		}
	}
	table.AddRowf("check violations", len(violations))
	table.Render(os.Stdout)
	if len(violations) > 0 {
		return fmt.Errorf("%d consensus violations: %v", len(violations), violations)
	}
	if failed > 0 {
		return fmt.Errorf("%d events failed", failed)
	}
	return nil
}

// cmdReplayTrace replays a recorded workload trace and audits it. A
// deterministic trace re-executes on virtual time and must reproduce
// every recorded outcome byte-identically; a live recording is audited
// standalone (arrivals regenerate from the embedded spec, outcomes form
// a consistent decision journal). Any violation is a non-zero exit.
func cmdReplayTrace(args []string) error {
	fs := flag.NewFlagSet("replay-trace", flag.ContinueOnError)
	verbose := fs.Bool("verbose", false, "print the replayed decision log")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: indulgence replay-trace [-verbose] FILE")
	}
	tr, err := workload.ReadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	hdr := tr.Header
	mode := "deterministic"
	if !hdr.Deterministic {
		mode = "live (real-clock)"
	}
	fmt.Printf("trace: v%d %s, seed %d, %s n=%d t=%d", hdr.Version, mode, hdr.Seed, hdr.Algorithm, hdr.N, hdr.T)
	if hdr.Groups > 1 {
		fmt.Printf(", %d groups (%s)", hdr.Groups, hdr.Placement)
	}
	if hdr.Classes > 1 {
		fmt.Printf(", %d classes", hdr.Classes)
	}
	fmt.Printf("; %d events, %d outcomes\n", len(tr.Events), len(tr.Outcomes))
	if tr.TornBytes > 0 {
		fmt.Printf("trace: dropped a %d-byte torn tail\n", tr.TornBytes)
	}
	rep, replayed, res := chaos.ReplayTrace(tr, chaos.Options{})
	if res.Err != nil {
		return res.Err
	}
	if replayed != nil {
		fmt.Printf("replayed: %d decided, %d shed, %d failed; %v virtual in %v wall\n",
			res.Decided, res.Shed, res.Failed,
			res.Virtual.Round(time.Microsecond), res.Wall.Round(time.Millisecond))
		if *verbose && res.Log != "" {
			fmt.Print(res.Log)
		}
	}
	for _, v := range rep.Violations {
		fmt.Printf("violation: %s\n", v)
	}
	if !rep.OK() {
		return fmt.Errorf("replay audit found %d violations", len(rep.Violations))
	}
	if replayed != nil {
		fmt.Println("replay audit clean: every recorded outcome reproduced")
	} else {
		fmt.Println("trace audit clean: arrivals regenerate and recorded decisions are consistent")
	}
	return nil
}
