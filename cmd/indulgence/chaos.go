package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"indulgence/internal/chaos"
)

// cmdChaos runs seeded chaos scenarios on virtual time and audits every
// run. A failing seed prints its full JSON spec; feeding that spec back
// via -spec replays the identical execution.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "first scenario seed")
	count := fs.Int("scenarios", 100, "number of consecutive seeds to run")
	groups := fs.Int("groups", 1, "run each scenario sharded over this many consensus groups")
	spec := fs.String("spec", "", "JSON scenario spec to run instead of generated seeds (@FILE reads it from FILE)")
	wl := fs.String("workload", "", "replace each generated scenario's wave load with this workload: gen:<seed>[:<maxevents>], @FILE or inline JSON (event cap clamps per scenario)")
	journalDir := fs.String("journal", "", "keep each run's decision journal under this directory (debugging; default: private temp dirs)")
	verbose := fs.Bool("verbose", false, "print every scenario's outcome, not just failures")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The replay contract is per-schedule, and schedules are only exact
	// when goroutines are cooperatively serialized.
	goruntime.GOMAXPROCS(1)

	opts := chaos.Options{JournalDir: *journalDir}

	if *spec != "" {
		raw := []byte(*spec)
		if (*spec)[0] == '@' {
			b, err := os.ReadFile((*spec)[1:])
			if err != nil {
				return err
			}
			raw = b
		}
		sc, err := chaos.ParseScenario(raw)
		if err != nil {
			return err
		}
		r := chaos.Run(sc, opts)
		printChaosResult(r, true)
		if !r.OK() || r.Failed > 0 {
			return fmt.Errorf("scenario seed %d failed", sc.Seed)
		}
		return nil
	}

	if *groups < 1 {
		return fmt.Errorf("need at least one consensus group, got -groups %d", *groups)
	}
	onRun := func(r chaos.Result) {
		if *verbose || !r.OK() || r.Failed > 0 {
			printChaosResult(r, *verbose)
		}
	}
	wallStart := time.Now()
	var st chaos.SweepStats
	if *wl != "" {
		wspec, err := parseWorkloadSpec(*wl)
		if err != nil {
			return err
		}
		st = chaos.SweepWorkload(*seed, *count, *groups, wspec, opts, onRun)
	} else {
		st = chaos.SweepGroups(*seed, *count, *groups, opts, onRun)
	}
	wall := time.Since(wallStart)
	perSec := float64(st.Runs) / wall.Seconds()
	speedup := float64(st.Virtual) / float64(wall)
	fmt.Printf("chaos: %d scenarios, %d decided, %d shed, %d failed, %d failing seeds\n",
		st.Runs, st.Decided, st.Shed, st.Failed, len(st.Failures))
	fmt.Printf("chaos: %.1f scenarios/s wall, %v virtual in %v wall (%.0fx compression)\n",
		perSec, st.Virtual.Round(time.Millisecond), wall.Round(time.Millisecond), speedup)
	if len(st.Failures) > 0 {
		return fmt.Errorf("%d of %d scenarios failed; replay any with: indulgence chaos -spec '<spec JSON above>'",
			len(st.Failures), st.Runs)
	}
	return nil
}

// printChaosResult reports one run; failures always include the replay
// spec and the audit findings.
func printChaosResult(r chaos.Result, withLog bool) {
	ok := r.OK() && r.Failed == 0
	status := "ok"
	if !ok {
		status = "FAIL"
	}
	fmt.Printf("seed %d: %s decided=%d shed=%d failed=%d virtual=%v wall=%v\n",
		r.Scenario.Seed, status, r.Decided, r.Shed, r.Failed,
		r.Virtual.Round(time.Microsecond), r.Wall.Round(time.Microsecond))
	if r.Err != nil {
		fmt.Printf("  error: %v\n", r.Err)
	}
	for _, v := range r.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	if !ok {
		fmt.Printf("  spec: %s\n", r.Scenario.JSON())
		// The final metrics snapshot is deterministic per seed, so it is
		// part of the failure's reproducible fingerprint — the replayed
		// run must render it byte-identically.
		if r.Metrics != "" {
			fmt.Println("  metrics snapshot at quiescence:")
			for _, line := range strings.Split(strings.TrimRight(r.Metrics, "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
	}
	if withLog && r.Log != "" {
		fmt.Print(r.Log)
	}
}
