package main

import (
	"os"
	"testing"

	"indulgence"
)

func TestRunSubcommands(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"run default", []string{"run"}},
		{"run killer", []string{"run", "-algo", "hurfinraynal", "-sched", "killer2"}},
		{"run floodset scs", []string{"run", "-algo", "floodset", "-model", "scs"}},
		{"run randomes", []string{"run", "-sched", "randomes", "-gsr", "4", "-seed", "7"}},
		{"run splitbrain", []string{"run", "-sched", "splitbrain", "-n", "4", "-t", "2"}},
		{"worst small", []string{"worst", "-n", "3", "-t", "1", "-mode", "all"}},
		{"worst hr", []string{"worst", "-algo", "hurfinraynal", "-n", "3", "-t", "1"}},
		{"table one", []string{"table", "-id", "A2"}},
		{"help", []string{"help"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err != nil {
				t.Fatalf("run(%v) = %v", tc.args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"nope"},
		{"run", "-algo", "unknown"},
		{"run", "-sched", "unknown"},
		{"run", "-model", "weird"},
		{"worst", "-algo", "unknown"},
		{"table", "-id", "E99"},
		{"live", "-transport", "warp"},
		{"live", "-algo", "unknown"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestLiveSubcommand(t *testing.T) {
	if err := run([]string{"live", "-n", "4", "-t", "1", "-algo", "afplus2", "-timeout", "10ms"}); err != nil {
		t.Fatalf("live memory: %v", err)
	}
	if err := run([]string{"live", "-n", "3", "-t", "1", "-transport", "tcp", "-timeout", "15ms"}); err != nil {
		t.Fatalf("live tcp: %v", err)
	}
	if err := run([]string{"live", "-n", "4", "-t", "1", "-algo", "afplus2", "-wait", "quorum", "-timeout", "10ms"}); err != nil {
		t.Fatalf("live quorum: %v", err)
	}
}

func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	out := dir + "/run.json"
	if err := run([]string{"run", "-n", "3", "-t", "1", "-trace", out}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	run, err := indulgence.ReadRunTrace(f)
	if err != nil {
		t.Fatalf("read trace back: %v", err)
	}
	if run.N != 3 || run.Rounds == 0 {
		t.Fatalf("trace content: n=%d rounds=%d", run.N, run.Rounds)
	}
}
