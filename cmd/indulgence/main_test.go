package main

import (
	"os"
	"testing"

	"indulgence"
	"indulgence/internal/check"
	"indulgence/internal/shard"
)

func TestRunSubcommands(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"run default", []string{"run"}},
		{"run killer", []string{"run", "-algo", "hurfinraynal", "-sched", "killer2"}},
		{"run floodset scs", []string{"run", "-algo", "floodset", "-model", "scs"}},
		{"run randomes", []string{"run", "-sched", "randomes", "-gsr", "4", "-seed", "7"}},
		{"run splitbrain", []string{"run", "-sched", "splitbrain", "-n", "4", "-t", "2"}},
		{"worst small", []string{"worst", "-n", "3", "-t", "1", "-mode", "all"}},
		{"worst hr", []string{"worst", "-algo", "hurfinraynal", "-n", "3", "-t", "1"}},
		{"table one", []string{"table", "-id", "A2"}},
		{"help", []string{"help"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err != nil {
				t.Fatalf("run(%v) = %v", tc.args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"nope"},
		{"run", "-algo", "unknown"},
		{"run", "-sched", "unknown"},
		{"run", "-model", "weird"},
		{"worst", "-algo", "unknown"},
		{"table", "-id", "E99"},
		{"live", "-transport", "warp"},
		{"live", "-algo", "unknown"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestLiveSubcommand(t *testing.T) {
	if err := run([]string{"live", "-n", "4", "-t", "1", "-algo", "afplus2", "-timeout", "10ms"}); err != nil {
		t.Fatalf("live memory: %v", err)
	}
	if err := run([]string{"live", "-n", "3", "-t", "1", "-transport", "tcp", "-timeout", "15ms"}); err != nil {
		t.Fatalf("live tcp: %v", err)
	}
	if err := run([]string{"live", "-n", "4", "-t", "1", "-algo", "afplus2", "-wait", "quorum", "-timeout", "10ms"}); err != nil {
		t.Fatalf("live quorum: %v", err)
	}
}

func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	out := dir + "/run.json"
	if err := run([]string{"run", "-n", "3", "-t", "1", "-trace", out}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	run, err := indulgence.ReadRunTrace(f)
	if err != nil {
		t.Fatalf("read trace back: %v", err)
	}
	if run.N != 3 || run.Rounds == 0 {
		t.Fatalf("trace content: n=%d rounds=%d", run.N, run.Rounds)
	}
}

func TestServeSubcommand(t *testing.T) {
	in, err := os.CreateTemp(t.TempDir(), "stdin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.WriteString("1\n2\n\nnot-a-number\n3\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = in
	defer func() { os.Stdin = old; _ = in.Close() }()
	if err := run([]string{"serve", "-n", "4", "-t", "1", "-timeout", "10ms",
		"-batch", "2", "-linger", "5ms"}); err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestBenchServiceSubcommand(t *testing.T) {
	if err := run([]string{"bench-service", "-n", "4", "-t", "1", "-proposals", "64",
		"-clients", "16", "-batch", "4", "-inflight", "16", "-timeout", "5ms",
		"-delay", "10ms", "-heal", "50ms"}); err != nil {
		t.Fatalf("bench-service memory: %v", err)
	}
	if err := run([]string{"bench-service", "-n", "3", "-t", "1", "-transport", "tcp",
		"-proposals", "32", "-clients", "8", "-timeout", "10ms"}); err != nil {
		t.Fatalf("bench-service tcp: %v", err)
	}
}

func TestServiceSubcommandErrors(t *testing.T) {
	cases := [][]string{
		{"serve", "-algo", "unknown"},
		{"serve", "-transport", "warp"},
		{"bench-service", "-algo", "unknown"},
		{"bench-service", "-transport", "warp"},
		{"bench-service", "-transport", "tcp", "-delay", "5ms", "-proposals", "1", "-clients", "1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// serveWithStdin runs the serve subcommand with the given lines piped to
// stdin.
func serveWithStdin(t *testing.T, input string, args ...string) error {
	t.Helper()
	in, err := os.CreateTemp(t.TempDir(), "stdin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.WriteString(input); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = in
	defer func() { os.Stdin = old; _ = in.Close() }()
	return run(append([]string{"serve"}, args...))
}

// TestServeJournalAndReplay is the CLI tour of persistence: two serve
// lifetimes share one journal directory, then replay dumps and audits
// the joint log.
func TestServeJournalAndReplay(t *testing.T) {
	dir := t.TempDir() + "/journal"
	common := []string{"-n", "3", "-t", "1", "-timeout", "10ms", "-batch", "2",
		"-linger", "5ms", "-journal", dir}
	if err := serveWithStdin(t, "1\n2\n3\n", common...); err != nil {
		t.Fatalf("first serve lifetime: %v", err)
	}
	if err := serveWithStdin(t, "4\n5\n", common...); err != nil {
		t.Fatalf("second serve lifetime: %v", err)
	}
	if err := run([]string{"replay", "-journal", dir}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := run([]string{"replay", "-journal", dir, "-quiet", "-limit", "1"}); err != nil {
		t.Fatalf("replay quiet: %v", err)
	}
}

func TestBenchServiceJournal(t *testing.T) {
	dir := t.TempDir() + "/journal"
	if err := run([]string{"bench-service", "-n", "3", "-t", "1", "-proposals", "32",
		"-clients", "8", "-batch", "4", "-timeout", "5ms", "-journal", dir,
		"-segment-bytes", "4096"}); err != nil {
		t.Fatalf("bench-service with journal: %v", err)
	}
	if err := run([]string{"replay", "-journal", dir, "-quiet"}); err != nil {
		t.Fatalf("replay after bench: %v", err)
	}
}

// TestServeShardSubcommand is the CLI tour of sharding: two sharded
// serve lifetimes share one journal root, each group journals its own
// subdirectory, every group's journal replays and audits on its own,
// and the merged stream passes the cross-group audit.
func TestServeShardSubcommand(t *testing.T) {
	const groups = 2
	dir := t.TempDir() + "/journal"
	common := []string{"-n", "3", "-t", "1", "-timeout", "10ms", "-batch", "2",
		"-linger", "5ms", "-groups", "2", "-journal", dir}
	if err := serveWithStdin(t, "1\n2\n3\n4\n", common...); err != nil {
		t.Fatalf("first sharded serve lifetime: %v", err)
	}
	if err := serveWithStdin(t, "5\n6\n", common...); err != nil {
		t.Fatalf("second sharded serve lifetime: %v", err)
	}
	for g := 0; g < groups; g++ {
		if err := run([]string{"replay", "-journal", shard.GroupDir(dir, g)}); err != nil {
			t.Fatalf("replay group %d: %v", g, err)
		}
	}
	records, starts, err := shard.ReplayDir(dir, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("sharded serve journaled no decisions")
	}
	if rep := check.Replay(records, starts, nil); !rep.OK() {
		t.Fatalf("cross-group audit failed: %v", rep.Violations)
	}
}

func TestBenchServiceShardSubcommand(t *testing.T) {
	if err := run([]string{"bench-service", "-n", "3", "-t", "1", "-groups", "3",
		"-proposals", "48", "-clients", "12", "-batch", "4", "-inflight", "8",
		"-timeout", "5ms"}); err != nil {
		t.Fatalf("bench-service sharded memory: %v", err)
	}
	if err := run([]string{"bench-service", "-n", "3", "-t", "1", "-transport", "tcp",
		"-groups", "2", "-placement", "key-affinity",
		"-proposals", "24", "-clients", "6", "-timeout", "10ms"}); err != nil {
		t.Fatalf("bench-service sharded tcp: %v", err)
	}
}

func TestShardFlagErrors(t *testing.T) {
	cases := [][]string{
		{"serve", "-groups", "0"},
		{"serve", "-groups", "2", "-placement", "random"},
		{"bench-service", "-groups", "-1"},
		{"bench-service", "-groups", "2", "-placement", "bogus"},
		{"cluster", "-groups", "0"},
		{"chaos", "-groups", "0", "-scenarios", "1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestReplayErrors(t *testing.T) {
	if err := run([]string{"replay"}); err == nil {
		t.Error("replay without -journal succeeded")
	}
	if err := run([]string{"replay", "-journal", t.TempDir() + "/missing"}); err == nil {
		t.Error("replay of a missing directory succeeded")
	}
}
