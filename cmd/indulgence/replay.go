package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"indulgence/internal/check"
	"indulgence/internal/journal"
	"indulgence/internal/stats"
	"indulgence/internal/wire"
)

// cmdReplay dumps and verifies a decision journal: it replays every
// intact record (tolerating a torn tail on the final segment, as
// recovery does), prints them, and audits the log with check.Replay —
// the offline counterpart of the service's per-instance audit — plus,
// when decision-trace records are on file, a trace audit: every trace's
// chosen algorithm must agree with the same instance's tagged start
// claim, so each selector demotion is recoverable from the journal
// alone. A journal that fails either audit, or is corrupt before its
// final segment, exits non-zero.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		dir    = fs.String("journal", "", "journal directory (required)")
		limit  = fs.Int("limit", 32, "print at most this many records (0 = all)")
		quiet  = fs.Bool("quiet", false, "suppress the record table")
		traces = fs.Bool("traces", false, "also print the decision-trace records")
		verify = fs.Bool("verify", true, "audit the journal with check.Replay")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("replay: -journal is required")
	}

	var recs []wire.DecisionRecord
	var starts []wire.StartRecord
	var trecs []wire.DecisionTraceRecord
	info, err := journal.Replay(*dir, func(e journal.Entry) error {
		switch {
		case e.Trace != nil:
			trecs = append(trecs, *e.Trace)
		case e.Start:
			// Keep the group tag: a sharded group's journal replayed on
			// its own must not look like a start/decision group mismatch.
			starts = append(starts, wire.StartRecord{Instance: e.Instance(), Alg: e.Alg, Group: e.Decision.Group})
		default:
			recs = append(recs, e.Decision)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// The claimed algorithm of each decided instance, when on record.
	// Only a tagged claim for the exact instance counts: a selecting
	// service claims per instance, so its journals label every decision,
	// while block claims (whose covered range is not recoverable from
	// the record) show "-" rather than risk attributing a later
	// lifetime's algorithm to instances it never covered.
	algOf := make(map[uint64]string, len(starts))
	for _, s := range starts {
		if s.Alg != "" {
			algOf[s.Instance] = s.Alg
		}
	}

	if !*quiet {
		table := stats.NewTable(fmt.Sprintf("journal %s", *dir),
			"instance", "value", "round", "batch", "algorithm")
		shown := len(recs)
		if *limit > 0 && shown > *limit {
			shown = *limit
		}
		for _, r := range recs[:shown] {
			alg := algOf[r.Instance]
			if alg == "" {
				alg = "-"
			}
			table.AddRowf(r.Instance, r.Value, r.Round, r.Batch, alg)
		}
		table.Render(os.Stdout)
		if shown < len(recs) {
			fmt.Printf("... and %d more (raise -limit to see them)\n", len(recs)-shown)
		}
	}
	if *traces && len(trecs) > 0 {
		table := stats.NewTable(fmt.Sprintf("decision traces %s", *dir),
			"instance", "level", "chosen", "not taken", "susp", "queue", "fill%", "batch", "linger", "ewma", "shed")
		shown := len(trecs)
		if *limit > 0 && shown > *limit {
			shown = *limit
		}
		for _, tr := range trecs[:shown] {
			table.AddRowf(tr.Instance, tr.Level, tr.Chosen, strings.Join(tr.NotTaken, ","),
				tr.Suspicions, fmt.Sprintf("%d/%d", tr.QueueLen, tr.QueueCap), tr.BatchFill,
				tr.BatchLimit, time.Duration(tr.LingerNanos), time.Duration(tr.EWMANanos),
				fmt.Sprintf("%08b", tr.ShedMask))
		}
		table.Render(os.Stdout)
		if shown < len(trecs) {
			fmt.Printf("... and %d more traces (raise -limit to see them)\n", len(trecs)-shown)
		}
	}
	fmt.Printf("%d decisions, %d instance starts, %d decision traces, %d segments; frontier %d\n",
		info.Decisions, len(starts), len(trecs), info.Segments, info.Frontier)
	if info.TornBytes > 0 {
		fmt.Printf("torn tail: %d trailing bytes of the final segment are not intact records (recovery drops them)\n",
			info.TornBytes)
	}

	if *verify {
		rep := check.Replay(recs, starts, nil)
		if !rep.OK() {
			return fmt.Errorf("journal audit failed: %v", rep.Err())
		}
		// Trace audit: a decision-trace record and a tagged start claim
		// for the same instance were journaled by the same flush, so
		// their algorithms must agree — this is what makes every selector
		// demotion recoverable from the journal alone.
		for _, tr := range trecs {
			if claimed, ok := algOf[tr.Instance]; ok && tr.Chosen != "" && tr.Chosen != claimed {
				return fmt.Errorf("journal audit failed: instance %d trace chose %q but start claim says %q",
					tr.Instance, tr.Chosen, claimed)
			}
		}
		if len(trecs) > 0 {
			fmt.Printf("audit: validity and agreement hold; %d decision traces agree with their start claims\n", len(trecs))
		} else {
			fmt.Println("audit: validity and agreement hold over the journaled history")
		}
	}
	return nil
}
