package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"indulgence/internal/check"
	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/shard"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
	"indulgence/internal/wire"
)

// servePeer is `serve -peers ...`: this process runs as ONE member of a
// multi-process cluster, listening on its own peer entry and dialing the
// others. Proposals still arrive one per stdin line; decisions print
// when this member's node of the instance decides. explicit names the
// flags the user actually set, so silently-overridden ones can error
// instead.
func servePeer(f serviceFlags, explicit map[string]bool) error {
	factory, err := factoryByName(*f.algo)
	if err != nil {
		return err
	}
	if *f.self < 1 {
		return fmt.Errorf("peer mode needs -self (this process's ID in the peer list)")
	}
	self := model.ProcessID(*f.self)
	var cfg transport.PeerConfig
	if *f.peersFile != "" {
		if *f.peers != "" {
			return fmt.Errorf("-peers and -peers-file are mutually exclusive")
		}
		cfg, err = transport.LoadPeerFile(self, *f.clusterID, *f.peersFile)
	} else {
		cfg, err = transport.ParsePeers(self, *f.clusterID, *f.peers)
	}
	if err != nil {
		return err
	}
	// The peer list is authoritative in peer mode: an explicit -n that
	// contradicts it, or an explicit non-TCP -transport, is a
	// misconfiguration the user should hear about, not a silent
	// override.
	if explicit["n"] && *f.n != cfg.N() {
		return fmt.Errorf("peer mode: -n %d contradicts the %d-member peer list (drop -n; the peer list decides)", *f.n, cfg.N())
	}
	if explicit["transport"] && *f.trans != "tcp" {
		return fmt.Errorf("peer mode: -transport %s is not available (peer clusters are always tcp)", *f.trans)
	}
	opts := transport.TCPOptions{}
	if *f.verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	ep, err := transport.NewTCPEndpoint(cfg, opts)
	if err != nil {
		return err
	}
	defer ep.Close()

	// Algorithm selection stays off in peer mode: one member cannot
	// switch a shared slot's protocol unilaterally.
	peerOpts := service.PeerOptions{
		T:           *f.t,
		Factory:     factory,
		BaseTimeout: *f.timeout,
		MaxBatch:    *f.batch,
		Linger:      *f.linger,
		MaxInflight: *f.inflight,
		JoinTimeout: *f.joinTimeout,
		Adaptive:    f.adaptConfig(false),
	}
	if *f.groups > 1 {
		return servePeerShard(f, cfg, peerOpts, ep, self)
	}
	if *f.groups < 1 {
		return fmt.Errorf("need at least one consensus group, got -groups %d", *f.groups)
	}

	var jn *journal.Journal
	if *f.journal != "" {
		jn, err = journal.Open(*f.journal, journal.Options{SegmentBytes: *f.segment})
		if err != nil {
			return err
		}
		defer jn.Close()
	}
	peerOpts.Journal = jn
	svc, err := service.NewPeer(peerOpts, cfg.N(), ep)
	if err != nil {
		return err
	}

	fmt.Printf("peer member up: p%d of %d (%s), %s, t=%d, listening on %s, batch ≤ %d, ≤ %d slots inflight\n",
		self, cfg.N(), cfg.ClusterID(), *f.algo, *f.t, ep.Addr(), *f.batch, *f.inflight)
	if *f.adaptive {
		fmt.Println("adaptive control plane on: batch/linger tuning + admission (algorithm selection is single-process only)")
	}
	if jn != nil {
		printJournalRecovery(jn)
	}
	fmt.Println("enter one integer proposal per line (EOF to stop):")

	scanErr := serveLoop(svc)
	if err := svc.Close(); err != nil {
		return err
	}
	st := svc.Snapshot()
	fmt.Printf("served %d proposals over %d instances (%d joined from peers); latency %s\n",
		st.Resolved, st.Instances, st.JoinedInstances, st.Latency)
	if *f.adaptive {
		fmt.Printf("control plane: %d adjustments over %d ticks, final batch ≤ %d linger %s, %d proposals shed\n",
			st.Control.Adjustments, st.Control.Ticks, st.Control.Batch, st.Control.Linger, st.Overloads)
	}
	if jn != nil {
		js := jn.Snapshot()
		fmt.Printf("journal: %d decisions durable over %d fsyncs; fsync %s\n",
			js.Decisions, js.Syncs, js.SyncLatency)
	}
	return scanErr
}

// servePeerShard is peer mode with -groups > 1: this member runs one
// service.PeerService per group over a single group-aware mux, with the
// placement router in front. Every member of the cluster must be
// launched with the same -groups value — a slot's owning group is slot
// mod groups on every member.
func servePeerShard(f serviceFlags, cfg transport.PeerConfig, peerOpts service.PeerOptions, ep *transport.TCPEndpoint, self model.ProcessID) error {
	policy, err := shard.ParsePolicy(*f.placement)
	if err != nil {
		return err
	}
	rt, err := shard.NewPeer(shard.PeerConfig{
		Peer:           peerOpts,
		Groups:         *f.groups,
		Placement:      policy,
		JournalDir:     *f.journal,
		JournalOptions: journal.Options{SegmentBytes: *f.segment},
	}, cfg.N(), ep)
	if err != nil {
		return err
	}

	fmt.Printf("peer member up: p%d of %d (%s), %s, t=%d, listening on %s, %d groups (%s placement), batch ≤ %d, ≤ %d slots inflight/group\n",
		self, cfg.N(), cfg.ClusterID(), *f.algo, *f.t, ep.Addr(), rt.Groups(), rt.Policy(), *f.batch, *f.inflight)
	if *f.adaptive {
		fmt.Println("adaptive control plane on: batch/linger tuning + admission (algorithm selection is single-process only)")
	}
	for _, jn := range rt.Journals() {
		printJournalRecovery(jn)
	}
	fmt.Println("enter one integer proposal per line (EOF to stop):")

	scanErr := serveLoop(rt)
	if err := rt.Close(); err != nil {
		return err
	}
	roll := rt.Snapshot()
	joined := 0
	for _, st := range roll.Groups {
		joined += st.JoinedInstances
	}
	fmt.Printf("served %d proposals over %d instances across %d groups (%d joined from peers)\n",
		roll.Resolved, roll.Instances, rt.Groups(), joined)
	for g, st := range roll.Groups {
		fmt.Printf("  group %d: %d proposals over %d instances (%d joined); latency %s\n",
			g, st.Resolved, st.Instances, st.JoinedInstances, st.Latency)
	}
	printShardJournals(rt.Journals())
	if len(roll.Violations) > 0 {
		return fmt.Errorf("%d consensus violations: %v", len(roll.Violations), roll.Violations)
	}
	return scanErr
}

// clusterChild is one spawned `serve -peers` process of the cluster
// driver.
type clusterChild struct {
	id    int
	args  []string
	cmd   *exec.Cmd
	stdin io.WriteCloser

	mu      sync.Mutex
	decided int
	failed  int
	fed     int
	exited  chan struct{}
	exitErr error
}

// counts returns the child's decided/failed line counts.
func (c *clusterChild) counts() (decided, failed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decided, c.failed
}

// clusterAudit accumulates live observations across every child and
// lifetime, detecting cross-process disagreement as it happens.
type clusterAudit struct {
	mu         sync.Mutex
	live       map[uint64]model.Value
	violations []string
}

// observe records one decision line; a second value for a known
// instance is a live-live agreement violation.
func (a *clusterAudit) observe(child int, instance uint64, value model.Value) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.live[instance]; ok && prev != value {
		a.violations = append(a.violations,
			fmt.Sprintf("agreement: instance %d observed as %d and as %d (p%d)", instance, prev, value, child))
		return
	}
	a.live[instance] = value
}

// start launches (or relaunches) the child and wires its stdout scanner.
func (c *clusterChild) start(bin string, audit *clusterAudit, echo bool) error {
	c.cmd = exec.Command(bin, c.args...)
	c.cmd.Stderr = os.Stderr
	stdin, err := c.cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := c.cmd.StdoutPipe()
	if err != nil {
		return err
	}
	c.stdin = stdin
	c.exited = make(chan struct{})
	if err := c.cmd.Start(); err != nil {
		// Nobody will close exited for a child that never started;
		// close it here so cleanup paths can always drain it.
		c.exitErr = err
		close(c.exited)
		return err
	}
	go func() {
		defer close(c.exited)
		rd := bufio.NewReader(stdout)
		for {
			line, err := rd.ReadString('\n')
			line = strings.TrimRight(line, "\r\n")
			if line != "" {
				if echo {
					fmt.Printf("p%d| %s\n", c.id, line)
				}
				var v int64
				var inst uint64
				var val int64
				if n, _ := fmt.Sscanf(line, "proposal %d -> instance %d decided %d", &v, &inst, &val); n == 3 {
					audit.observe(c.id, inst, model.Value(val))
					c.mu.Lock()
					c.decided++
					c.mu.Unlock()
				} else if n, _ := fmt.Sscanf(line, "proposal %d failed", &v); n == 1 {
					c.mu.Lock()
					c.failed++
					c.mu.Unlock()
				}
			}
			if err != nil {
				break
			}
		}
		c.exitErr = c.cmd.Wait()
	}()
	return nil
}

// cmdCluster is the local multi-process smoke driver: it spawns one real
// `serve -peers` OS process per member on loopback ports, feeds
// proposals round-robin over the members' stdins, optionally kills and
// restarts one member (journal intact) between two proposal waves, and
// finally audits every member journal plus every decision line printed
// by any member with check.Replay — uniform agreement across OS
// processes and process lifetimes.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 3, "number of member processes")
		t         = fs.Int("t", 1, "resilience bound")
		algo      = fs.String("algo", "atplus2", "algorithm")
		proposals = fs.Int("proposals", 9, "proposals per wave (round-robin over members)")
		batch     = fs.Int("batch", 2, "max proposals per instance")
		inflight  = fs.Int("inflight", 4, "max concurrent instances per member")
		timeout   = fs.Duration("timeout", 25*time.Millisecond, "base suspicion timeout")
		groups    = fs.Int("groups", 1, "consensus groups per member (passed through to every member)")
		placement = fs.String("placement", "round-robin", "placement policy passed through to every member")
		restart   = fs.Int("restart", 0, "kill and restart this member between waves (0 = none)")
		journalAt = fs.String("journal", "", "base journal directory, one subdir per member (default: temp)")
		limit     = fs.Duration("limit", 2*time.Minute, "overall deadline")
		bin       = fs.String("bin", "", "indulgence binary to spawn (default: this executable)")
		echo      = fs.Bool("echo", true, "echo member output with pN| prefixes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 || *n > model.MaxProcesses {
		return fmt.Errorf("cluster: invalid member count %d", *n)
	}
	if *restart < 0 || *restart > *n {
		return fmt.Errorf("cluster: -restart %d is not a member of 1..%d", *restart, *n)
	}
	if *groups < 1 {
		return fmt.Errorf("cluster: need at least one consensus group, got -groups %d", *groups)
	}
	exe := *bin
	if exe == "" {
		var err error
		if exe, err = os.Executable(); err != nil {
			return fmt.Errorf("cluster: cannot locate own binary (use -bin): %w", err)
		}
	}
	base := *journalAt
	if base == "" {
		dir, err := os.MkdirTemp("", "indulgence-cluster-")
		if err != nil {
			return err
		}
		base = dir
	}
	deadline := time.Now().Add(*limit)

	audit := &clusterAudit{live: make(map[uint64]model.Value)}
	var children []*clusterChild
	defer func() {
		for _, c := range children {
			if c.cmd != nil && c.cmd.Process != nil {
				_ = c.cmd.Process.Kill()
			}
		}
	}()
	// Spawning has an unavoidable reserve-then-bind port race (members
	// must share a fixed peer list, so ports are reserved by binding
	// and releasing ephemeral ones first); if another process steals a
	// port in that window the member dies at listen, which shows up as
	// an immediate exit — retry the whole construction with fresh
	// ports instead of failing the run.
	const spawnAttempts = 3
	for attempt := 1; ; attempt++ {
		addrs := make([]string, *n)
		for i := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			addrs[i] = ln.Addr().String()
			_ = ln.Close()
		}
		specParts := make([]string, *n)
		for i, a := range addrs {
			specParts[i] = fmt.Sprintf("p%d=%s", i+1, a)
		}
		spec := strings.Join(specParts, ",")
		children = make([]*clusterChild, *n)
		for i := range children {
			id := i + 1
			childArgs := []string{"serve",
				"-peers", spec, "-self", fmt.Sprint(id),
				"-algo", *algo, "-t", fmt.Sprint(*t),
				"-batch", fmt.Sprint(*batch), "-inflight", fmt.Sprint(*inflight),
				"-timeout", timeout.String(), "-join-timeout", "5s",
				"-journal", filepath.Join(base, fmt.Sprintf("p%d", id)),
			}
			if *groups > 1 {
				childArgs = append(childArgs, "-groups", fmt.Sprint(*groups), "-placement", *placement)
			}
			children[i] = &clusterChild{id: id, args: childArgs}
		}
		fmt.Printf("cluster: %d members over %s, journals under %s\n", *n, spec, base)
		spawnErr := func() error {
			for _, c := range children {
				if err := c.start(exe, audit, *echo); err != nil {
					return fmt.Errorf("start member p%d: %w", c.id, err)
				}
			}
			time.Sleep(250 * time.Millisecond)
			for _, c := range children {
				select {
				case <-c.exited:
					return fmt.Errorf("member p%d exited at startup: %v", c.id, c.exitErr)
				default:
				}
			}
			return nil
		}()
		if spawnErr == nil {
			break
		}
		for _, c := range children {
			if c.cmd != nil && c.cmd.Process != nil {
				_ = c.cmd.Process.Kill()
			}
			if c.exited != nil {
				<-c.exited
			}
		}
		if attempt >= spawnAttempts {
			return fmt.Errorf("cluster: %w (after %d attempts)", spawnErr, attempt)
		}
		fmt.Printf("cluster: %v — respawning with fresh ports\n", spawnErr)
	}

	// feed distributes one wave of proposals round-robin and waits for
	// every member to print a decision (or failure) for everything it
	// was fed across all waves so far.
	next := 1
	feed := func() error {
		for i := 0; i < *proposals; i++ {
			c := children[(next-1)%*n]
			if _, err := io.WriteString(c.stdin, fmt.Sprintf("%d\n", next)); err != nil {
				return fmt.Errorf("cluster: feed p%d: %w", c.id, err)
			}
			c.mu.Lock()
			c.fed++
			c.mu.Unlock()
			next++
		}
		for {
			settled := true
			for _, c := range children {
				decided, failed := c.counts()
				c.mu.Lock()
				fed := c.fed
				c.mu.Unlock()
				if decided+failed < fed {
					settled = false
				}
				select {
				case <-c.exited:
					return fmt.Errorf("cluster: member p%d exited early: %v", c.id, c.exitErr)
				default:
				}
			}
			if settled {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: deadline exceeded waiting for decisions")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	if err := feed(); err != nil {
		return err
	}
	if *restart > 0 {
		victim := children[*restart-1]
		fmt.Printf("cluster: killing member p%d (SIGKILL), journal stays\n", victim.id)
		_ = victim.cmd.Process.Kill()
		<-victim.exited
		fmt.Printf("cluster: restarting member p%d from its journal\n", victim.id)
		if err := victim.start(exe, audit, *echo); err != nil {
			return fmt.Errorf("cluster: restart member p%d: %w", victim.id, err)
		}
		// Reset the line accounting for the new lifetime: decisions
		// already printed stay in the audit, but the new lifetime is
		// only answerable for what it is fed from here on.
		victim.mu.Lock()
		victim.fed, victim.decided, victim.failed = 0, 0, 0
		victim.mu.Unlock()
		if err := feed(); err != nil {
			return err
		}
	}

	// EOF every member; they drain and exit.
	for _, c := range children {
		_ = c.stdin.Close()
	}
	for _, c := range children {
		select {
		case <-c.exited:
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("cluster: member p%d did not exit", c.id)
		}
		if c.exitErr != nil {
			return fmt.Errorf("cluster: member p%d exited with: %v", c.id, c.exitErr)
		}
	}

	// Offline audit: the union of every member journal (both lifetimes
	// of a restarted member share a directory) against every live
	// observation.
	var records []wire.DecisionRecord
	var starts []wire.StartRecord
	for i := 1; i <= *n; i++ {
		dir := filepath.Join(base, fmt.Sprintf("p%d", i))
		if *groups > 1 {
			// Sharded members journal per group under dir; merge every
			// group's stream so check.Replay's cross-group instance
			// audit sees the member whole.
			recs, sts, err := shard.ReplayDir(dir, *groups)
			if err != nil {
				return fmt.Errorf("cluster: replay %s: %w", dir, err)
			}
			records = append(records, recs...)
			starts = append(starts, sts...)
			continue
		}
		if _, err := journal.Replay(dir, func(e journal.Entry) error {
			switch {
			case e.Trace != nil:
				// Introspection context, not part of the consensus audit.
			case e.Start:
				starts = append(starts, wire.StartRecord{Instance: e.Instance(), Alg: e.Alg, Group: e.Decision.Group})
			default:
				records = append(records, e.Decision)
			}
			return nil
		}); err != nil {
			return fmt.Errorf("cluster: replay %s: %w", dir, err)
		}
	}
	audit.mu.Lock()
	rep := check.Replay(records, starts, audit.live)
	violations := append(audit.violations, rep.Violations...)
	decisions := len(audit.live)
	audit.mu.Unlock()

	table := stats.NewTable(
		fmt.Sprintf("cluster: %d members, %s, t=%d, %d proposals/wave", *n, *algo, *t, *proposals),
		"metric", "value")
	table.AddRowf("proposals fed", next-1)
	table.AddRowf("groups per member", *groups)
	table.AddRowf("instances decided (live)", decisions)
	table.AddRowf("journal records (all members)", len(records))
	table.AddRowf("journal start claims", len(starts))
	table.AddRowf("member restarted", *restart)
	table.AddRowf("cross-process violations", len(violations))
	table.Render(os.Stdout)
	if decisions == 0 {
		return fmt.Errorf("cluster: no instance decided")
	}
	if len(violations) > 0 {
		return fmt.Errorf("cluster: %d violations: %v", len(violations), violations)
	}
	fmt.Println("audit: uniform agreement holds across OS processes and lifetimes")
	return nil
}
