package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"indulgence/internal/journal"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
)

// buildEndpoints assembles n transport endpoints over the chosen
// transport. hub is nil for tcp; closer shuts the transport down.
func buildEndpoints(trans string, n int) (eps []transport.Transport, hub *transport.Hub, closer func(), err error) {
	eps = make([]transport.Transport, n)
	switch trans {
	case "memory":
		hub, err = transport.NewHub(n)
		if err != nil {
			return nil, nil, nil, err
		}
		for i := range eps {
			if eps[i], err = hub.Endpoint(model.ProcessID(i + 1)); err != nil {
				_ = hub.Close()
				return nil, nil, nil, err
			}
		}
		return eps, hub, func() { _ = hub.Close() }, nil
	case "tcp":
		tc, err := transport.NewTCPCluster(n)
		if err != nil {
			return nil, nil, nil, err
		}
		for i := range eps {
			if eps[i], err = tc.Endpoint(model.ProcessID(i + 1)); err != nil {
				_ = tc.Close()
				return nil, nil, nil, err
			}
		}
		return eps, nil, func() { _ = tc.Close() }, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown transport %q", trans)
	}
}

// serviceFlags are the flags shared by serve and bench-service.
type serviceFlags struct {
	algo     *string
	n, t     *int
	trans    *string
	batch    *int
	linger   *time.Duration
	inflight *int
	timeout  *time.Duration
	journal  *string
	segment  *int64

	// Multi-process peer mode (serve only): a non-empty -peers or
	// -peers-file makes this process ONE member of a cluster of
	// separately launched processes instead of hosting all n in-process.
	peers       *string
	peersFile   *string
	self        *int
	clusterID   *string
	joinTimeout *time.Duration
	verbose     *bool
}

func newServiceFlags(fs *flag.FlagSet) serviceFlags {
	return serviceFlags{
		algo:     fs.String("algo", "atplus2", "algorithm"),
		n:        fs.Int("n", 5, "number of processes"),
		t:        fs.Int("t", 2, "resilience bound"),
		trans:    fs.String("transport", "memory", "transport: memory or tcp"),
		batch:    fs.Int("batch", 8, "max proposals per consensus instance"),
		linger:   fs.Duration("linger", 2*time.Millisecond, "max wait to fill a batch"),
		inflight: fs.Int("inflight", 64, "max concurrently running instances"),
		timeout:  fs.Duration("timeout", 25*time.Millisecond, "base suspicion timeout"),
		journal:  fs.String("journal", "", "durable decision journal directory (empty = no journal)"),
		segment:  fs.Int64("segment-bytes", 1<<20, "journal segment rotation size"),

		peers:       fs.String("peers", "", "peer list p1=host:port,p2=host:port,... — run as ONE member of a multi-process cluster"),
		peersFile:   fs.String("peers-file", "", "file with one pN=host:port peer entry per line (alternative to -peers)"),
		self:        fs.Int("self", 0, "this process's ID in the peer list (peer mode)"),
		clusterID:   fs.String("cluster-id", "", "cluster name carried in the TCP handshake (default \"indulgence\")"),
		joinTimeout: fs.Duration("join-timeout", 10*time.Second, "deadline for instances joined on a peer's signal (peer mode)"),
		verbose:     fs.Bool("verbose", false, "log transport connection events to stderr (peer mode)"),
	}
}

// start builds the transport, the optional journal and the service from
// the parsed flags. The returned cleanup closes the transport and the
// journal; call it after the service is closed.
func (f serviceFlags) start() (*service.Service, *transport.Hub, *journal.Journal, func(), error) {
	factory, err := factoryByName(*f.algo)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	eps, hub, closeTransport, err := buildEndpoints(*f.trans, *f.n)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var jn *journal.Journal
	cleanup := closeTransport
	if *f.journal != "" {
		jn, err = journal.Open(*f.journal, journal.Options{SegmentBytes: *f.segment})
		if err != nil {
			closeTransport()
			return nil, nil, nil, nil, err
		}
		cleanup = func() {
			closeTransport()
			_ = jn.Close()
		}
	}
	svc, err := service.New(service.Config{
		N: *f.n, T: *f.t,
		Factory:     factory,
		BaseTimeout: *f.timeout,
		MaxBatch:    *f.batch,
		Linger:      *f.linger,
		MaxInflight: *f.inflight,
		Journal:     jn,
	}, eps)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	return svc, hub, jn, cleanup, nil
}

// proposalSink is what the stdin loop needs from either service shape
// (the in-process Service or a multi-process PeerService member).
type proposalSink interface {
	Propose(ctx context.Context, v model.Value) (*service.Future, error)
}

// printJournalRecovery reports what a freshly opened journal recovered.
func printJournalRecovery(jn *journal.Journal) {
	st := jn.Snapshot()
	fmt.Printf("journal: %s — recovered %d decisions (+%d starts), resuming at instance %d",
		jn.Dir(), st.Decisions, st.Starts, st.Frontier)
	if st.TornBytes > 0 {
		fmt.Printf(" (dropped a %d-byte torn tail)", st.TornBytes)
	}
	fmt.Println()
}

// serveLoop reads one integer proposal per stdin line, proposes each, and
// prints its decision when the instance it rode resolves. It returns when
// stdin hits EOF and every future has fired.
func serveLoop(svc proposalSink) error {
	ctx := context.Background()
	var wg sync.WaitGroup
	var scanErr error
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			fmt.Printf("not a proposal: %q\n", line)
			continue
		}
		fut, err := svc.Propose(ctx, model.Value(v))
		if err != nil {
			scanErr = err
			break
		}
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			dec, err := fut.Wait(ctx)
			if err != nil {
				fmt.Printf("proposal %d failed: %v\n", v, err)
				return
			}
			fmt.Printf("proposal %d -> instance %d decided %d (round %d, batch of %d)\n",
				v, dec.Instance, dec.Value, dec.Round, dec.Batch)
		}(v)
	}
	if scanErr == nil {
		scanErr = sc.Err()
	}
	wg.Wait()
	return scanErr
}

// cmdServe runs the consensus service interactively: every line on stdin
// is one integer proposal; its decision is printed when the instance it
// was batched into resolves. EOF drains the service and prints a summary.
// With -peers (or -peers-file) the process serves as ONE member of a
// multi-process cluster instead of hosting all n processes itself.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	f := newServiceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *f.peers != "" || *f.peersFile != "" {
		explicit := make(map[string]bool)
		fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
		return servePeer(f, explicit)
	}
	svc, _, jn, cleanup, err := f.start()
	if err != nil {
		return err
	}
	defer cleanup()

	fmt.Printf("consensus service up: %s, n=%d t=%d, %s transport, batch ≤ %d, linger %s, ≤ %d instances inflight\n",
		*f.algo, *f.n, *f.t, *f.trans, *f.batch, *f.linger, *f.inflight)
	if jn != nil {
		printJournalRecovery(jn)
	}
	fmt.Println("enter one integer proposal per line (EOF to stop):")

	scanErr := serveLoop(svc)
	if err := svc.Close(); err != nil {
		return err
	}
	st := svc.Snapshot()
	fmt.Printf("served %d proposals over %d instances; latency %s\n",
		st.Resolved, st.Instances, st.Latency)
	if jn != nil {
		js := jn.Snapshot()
		fmt.Printf("journal: %d decisions durable over %d fsyncs; fsync %s\n",
			js.Decisions, js.Syncs, js.SyncLatency)
	}
	if len(st.Violations) > 0 {
		return fmt.Errorf("%d consensus violations: %v", len(st.Violations), st.Violations)
	}
	return scanErr
}

// cmdBenchService is the closed-loop load generator: C client workers
// each submit proposals back-to-back (propose, wait, repeat) until P
// proposals have resolved, optionally under an injected asynchronous
// period, and the run reports throughput and latency percentiles.
func cmdBenchService(args []string) error {
	fs := flag.NewFlagSet("bench-service", flag.ContinueOnError)
	f := newServiceFlags(fs)
	var (
		proposals = fs.Int("proposals", 2048, "total proposals to drive")
		clients   = fs.Int("clients", 128, "closed-loop client workers")
		delay     = fs.Duration("delay", 0, "delay injected on p1's outbound links (memory transport)")
		heal      = fs.Duration("heal", 500*time.Millisecond, "when to heal the injected delay")
		limit     = fs.Duration("limit", 5*time.Minute, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc, hub, jn, cleanup, err := f.start()
	if err != nil {
		return err
	}
	defer cleanup()
	if *delay > 0 {
		if hub == nil {
			return fmt.Errorf("delay injection needs the memory transport")
		}
		hub.DelayProcess(1, *delay)
		time.AfterFunc(*heal, hub.Heal)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *limit)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		next     = make(chan model.Value, *proposals)
	)
	for i := 0; i < *proposals; i++ {
		next <- model.Value(i + 1)
	}
	close(next)
	begin := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range next {
				fut, err := svc.Propose(ctx, v)
				if err == nil {
					_, err = fut.Wait(ctx)
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("proposal %d: %w", v, err)
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin)
	if err := svc.Close(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}

	st := svc.Snapshot()
	table := stats.NewTable(
		fmt.Sprintf("bench-service: %s, n=%d t=%d, %s transport, %d clients, batch ≤ %d, ≤ %d inflight",
			*f.algo, *f.n, *f.t, *f.trans, *clients, *f.batch, *f.inflight),
		"metric", "value")
	table.AddRowf("proposals resolved", st.Resolved)
	table.AddRowf("instances decided", st.Instances)
	table.AddRowf("wall time", elapsed.Round(time.Millisecond))
	table.AddRowf("proposals/sec", fmt.Sprintf("%.0f", float64(st.Resolved)/elapsed.Seconds()))
	table.AddRowf("decisions/sec (instances)", fmt.Sprintf("%.0f", float64(st.Instances)/elapsed.Seconds()))
	table.AddRowf("mean batch", fmt.Sprintf("%.2f", float64(st.Resolved)/float64(max(st.Instances, 1))))
	table.AddRowf("latency p50", st.Latency.P50.Round(time.Microsecond))
	table.AddRowf("latency p90", st.Latency.P90.Round(time.Microsecond))
	table.AddRowf("latency p99", st.Latency.P99.Round(time.Microsecond))
	table.AddRowf("latency max", st.Latency.Max.Round(time.Microsecond))
	table.AddRowf("rounds min..max (t+2 floor)", fmt.Sprintf("%d..%d (%d)", st.Rounds.Min, st.Rounds.Max, *f.t+2))
	table.AddRowf("check violations", len(st.Violations))
	if jn != nil {
		js := jn.Snapshot()
		table.AddRowf("journal decisions durable", js.Decisions)
		table.AddRowf("journal fsyncs (group commits)", js.Syncs)
		table.AddRowf("journal fsync p99", js.SyncLatency.P99.Round(time.Microsecond))
		table.AddRowf("journal segments", js.Segments)
	}
	table.Render(os.Stdout)
	if len(st.Violations) > 0 {
		return fmt.Errorf("%d consensus violations: %v", len(st.Violations), st.Violations)
	}
	if st.Failed > 0 || st.InstanceFailures > 0 {
		return fmt.Errorf("%d proposals / %d instances failed", st.Failed, st.InstanceFailures)
	}
	return nil
}
