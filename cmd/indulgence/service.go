package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"indulgence/internal/adapt"
	"indulgence/internal/journal"
	"indulgence/internal/metrics"
	"indulgence/internal/model"
	"indulgence/internal/service"
	"indulgence/internal/shard"
	"indulgence/internal/stats"
	"indulgence/internal/transport"
)

// buildEndpoints assembles n transport endpoints over the chosen
// transport. hub is nil for tcp; closer shuts the transport down.
func buildEndpoints(trans string, n int) (eps []transport.Transport, hub *transport.Hub, closer func(), err error) {
	eps = make([]transport.Transport, n)
	switch trans {
	case "memory":
		hub, err = transport.NewHub(n)
		if err != nil {
			return nil, nil, nil, err
		}
		for i := range eps {
			if eps[i], err = hub.Endpoint(model.ProcessID(i + 1)); err != nil {
				_ = hub.Close()
				return nil, nil, nil, err
			}
		}
		return eps, hub, func() { _ = hub.Close() }, nil
	case "tcp":
		tc, err := transport.NewTCPCluster(n)
		if err != nil {
			return nil, nil, nil, err
		}
		for i := range eps {
			if eps[i], err = tc.Endpoint(model.ProcessID(i + 1)); err != nil {
				_ = tc.Close()
				return nil, nil, nil, err
			}
		}
		return eps, nil, func() { _ = tc.Close() }, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown transport %q", trans)
	}
}

// serviceFlags are the flags shared by serve and bench-service.
type serviceFlags struct {
	algo     *string
	n, t     *int
	trans    *string
	batch    *int
	linger   *time.Duration
	inflight *int
	timeout  *time.Duration
	journal  *string
	segment  *int64

	// Ops endpoint (internal/metrics): -metrics-addr serves the live
	// registry as Prometheus text and JSON plus net/http/pprof.
	metricsAddr *string

	// Sharding (internal/shard): -groups > 1 runs G consensus groups
	// over the shared transport, each owning a strided slice of the
	// instance-ID space, with a placement router in front.
	groups    *int
	placement *string

	// Adaptive control plane (internal/adapt): feedback-tuned batching
	// and admission, plus per-instance algorithm selection (single-
	// process mode only).
	adaptive      *bool
	adaptSelect   *bool
	adaptBatchMax *int
	adaptLingMax  *time.Duration
	classes       *int

	// Multi-process peer mode (serve only): a non-empty -peers or
	// -peers-file makes this process ONE member of a cluster of
	// separately launched processes instead of hosting all n in-process.
	peers       *string
	peersFile   *string
	self        *int
	clusterID   *string
	joinTimeout *time.Duration
	verbose     *bool
}

func newServiceFlags(fs *flag.FlagSet) serviceFlags {
	return serviceFlags{
		algo:     fs.String("algo", "atplus2", "algorithm"),
		n:        fs.Int("n", 5, "number of processes"),
		t:        fs.Int("t", 2, "resilience bound"),
		trans:    fs.String("transport", "memory", "transport: memory or tcp"),
		batch:    fs.Int("batch", 8, "max proposals per consensus instance"),
		linger:   fs.Duration("linger", 2*time.Millisecond, "max wait to fill a batch"),
		inflight: fs.Int("inflight", 64, "max concurrently running instances"),
		timeout:  fs.Duration("timeout", 25*time.Millisecond, "base suspicion timeout"),
		journal:  fs.String("journal", "", "durable decision journal directory (empty = no journal)"),
		segment:  fs.Int64("segment-bytes", 1<<20, "journal segment rotation size"),

		metricsAddr: fs.String("metrics-addr", "", "ops endpoint address (host:port or :port) serving /metrics, /metrics.json and /debug/pprof (empty = off)"),

		groups:    fs.Int("groups", 1, "consensus groups multiplexed over the shared transport (each owns a strided instance-ID slice and its own journal subdirectory)"),
		placement: fs.String("placement", "round-robin", "proposal placement across groups: round-robin, least-loaded or key-affinity"),

		adaptive:      fs.Bool("adaptive", false, "attach the feedback control plane: batch/linger tuned from observed latency and backlog, overload shed with a typed error"),
		adaptSelect:   fs.Bool("adaptive-select", true, "with -adaptive: pick each instance's algorithm from recent outcomes (A_f+2 when synchronous and trusted; single-process mode only)"),
		adaptBatchMax: fs.Int("adaptive-batch-max", 64, "with -adaptive: controller batch ceiling"),
		adaptLingMax:  fs.Duration("adaptive-linger-max", 8*time.Millisecond, "with -adaptive: controller linger ceiling"),
		classes:       fs.Int("classes", 0, "with -adaptive: SLO classes admission distinguishes, shedding lowest first (0 = classless, or the spec's class count for -workload runs)"),

		peers:       fs.String("peers", "", "peer list p1=host:port,p2=host:port,... — run as ONE member of a multi-process cluster"),
		peersFile:   fs.String("peers-file", "", "file with one pN=host:port peer entry per line (alternative to -peers)"),
		self:        fs.Int("self", 0, "this process's ID in the peer list (peer mode)"),
		clusterID:   fs.String("cluster-id", "", "cluster name carried in the TCP handshake (default \"indulgence\")"),
		joinTimeout: fs.Duration("join-timeout", 10*time.Second, "deadline for instances joined on a peer's signal (peer mode)"),
		verbose:     fs.Bool("verbose", false, "log transport connection events to stderr (peer mode)"),
	}
}

// adaptConfig builds the control-plane config the flags ask for (nil
// without -adaptive). selectAlgos additionally gates the selector —
// peer mode must pass false, a member cannot switch a shared slot's
// protocol unilaterally.
func (f serviceFlags) adaptConfig(selectAlgos bool) *adapt.Config {
	if !*f.adaptive {
		return nil
	}
	cfg := &adapt.Config{
		MaxBatch:         *f.adaptBatchMax,
		MaxLinger:        *f.adaptLingMax,
		SelectAlgorithms: selectAlgos && *f.adaptSelect,
		Classes:          *f.classes,
	}
	if *f.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return cfg
}

// started bundles whichever runtime shape the flags produced: one
// service.Service for -groups 1 (byte-identical to the pre-sharding
// path), or a shard.Runtime routing across G groups otherwise.
type started struct {
	svc     *service.Service // -groups 1
	rt      *shard.Runtime   // -groups > 1
	hub     *transport.Hub
	jn      *journal.Journal   // single-group journal; sharded ones live in rt
	ops     *metrics.OpsServer // -metrics-addr endpoint (nil = off)
	cleanup func()
}

// sink returns the proposal entry point of whichever shape started.
func (s *started) sink() proposalSink {
	if s.rt != nil {
		return s.rt
	}
	return s.svc
}

// close drains and stops the runtime (transport cleanup stays separate).
func (s *started) close() error {
	if s.rt != nil {
		return s.rt.Close()
	}
	return s.svc.Close()
}

// start builds the transport, the optional journal(s) and the service —
// or the sharded runtime for -groups > 1 — from the parsed flags. The
// returned cleanup closes the transport and the journal; call it after
// the service is closed.
func (f serviceFlags) start() (*started, error) {
	factory, err := factoryByName(*f.algo)
	if err != nil {
		return nil, err
	}
	if *f.groups < 1 {
		return nil, fmt.Errorf("need at least one consensus group, got -groups %d", *f.groups)
	}
	policy, err := shard.ParsePolicy(*f.placement)
	if err != nil {
		return nil, err
	}
	eps, hub, closeTransport, err := buildEndpoints(*f.trans, *f.n)
	if err != nil {
		return nil, err
	}
	// The ops endpoint and the registry it serves: one registry spans
	// the whole runtime — every group's service, control plane and
	// journal registers on it — so one scrape shows the full picture.
	var reg *metrics.Registry
	var ops *metrics.OpsServer
	cleanup := closeTransport
	if *f.metricsAddr != "" {
		reg = metrics.NewRegistry()
		ops, err = metrics.ServeOps(*f.metricsAddr, reg)
		if err != nil {
			closeTransport()
			return nil, fmt.Errorf("ops endpoint: %w", err)
		}
		cleanup = func() {
			_ = ops.Close()
			closeTransport()
		}
	}
	cfg := service.Config{
		N: *f.n, T: *f.t,
		Factory:     factory,
		BaseTimeout: *f.timeout,
		MaxBatch:    *f.batch,
		Linger:      *f.linger,
		MaxInflight: *f.inflight,
		Adaptive:    f.adaptConfig(true),
		Metrics:     reg,
	}
	if *f.groups > 1 {
		rt, err := shard.New(shard.Config{
			Service:        cfg,
			Groups:         *f.groups,
			Placement:      policy,
			JournalDir:     *f.journal,
			JournalOptions: journal.Options{SegmentBytes: *f.segment},
		}, eps)
		if err != nil {
			cleanup()
			return nil, err
		}
		return &started{rt: rt, hub: hub, ops: ops, cleanup: cleanup}, nil
	}
	var jn *journal.Journal
	if *f.journal != "" {
		jo := journal.Options{SegmentBytes: *f.segment}
		if reg != nil {
			jo.Metrics = reg
			jo.MetricsLabels = []metrics.Label{{Key: "group", Value: "0"}}
		}
		jn, err = journal.Open(*f.journal, jo)
		if err != nil {
			cleanup()
			return nil, err
		}
		prev := cleanup
		cleanup = func() {
			prev()
			_ = jn.Close()
		}
	}
	cfg.Journal = jn
	svc, err := service.New(cfg, eps)
	if err != nil {
		cleanup()
		return nil, err
	}
	return &started{svc: svc, hub: hub, jn: jn, ops: ops, cleanup: cleanup}, nil
}

// proposalSink is what the stdin loop needs from either service shape
// (the in-process Service or a multi-process PeerService member).
type proposalSink interface {
	Propose(ctx context.Context, v model.Value) (*service.Future, error)
}

// printJournalRecovery reports what a freshly opened journal recovered.
func printJournalRecovery(jn *journal.Journal) {
	st := jn.Snapshot()
	fmt.Printf("journal: %s — recovered %d decisions (+%d starts), resuming at instance %d",
		jn.Dir(), st.Decisions, st.Starts, st.Frontier)
	if st.TornBytes > 0 {
		fmt.Printf(" (dropped a %d-byte torn tail)", st.TornBytes)
	}
	fmt.Println()
}

// serveLoop reads one integer proposal per stdin line, proposes each, and
// prints its decision when the instance it rode resolves. It returns when
// stdin hits EOF and every future has fired.
func serveLoop(svc proposalSink) error {
	ctx := context.Background()
	var wg sync.WaitGroup
	var scanErr error
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			fmt.Printf("not a proposal: %q\n", line)
			continue
		}
		fut, err := svc.Propose(ctx, model.Value(v))
		if err != nil {
			scanErr = err
			break
		}
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			dec, err := fut.Wait(ctx)
			if err != nil {
				fmt.Printf("proposal %d failed: %v\n", v, err)
				return
			}
			fmt.Printf("proposal %d -> instance %d decided %d (round %d, batch of %d)\n",
				v, dec.Instance, dec.Value, dec.Round, dec.Batch)
		}(v)
	}
	if scanErr == nil {
		scanErr = sc.Err()
	}
	wg.Wait()
	return scanErr
}

// cmdServe runs the consensus service interactively: every line on stdin
// is one integer proposal; its decision is printed when the instance it
// was batched into resolves. EOF drains the service and prints a summary.
// With -peers (or -peers-file) the process serves as ONE member of a
// multi-process cluster instead of hosting all n processes itself.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	f := newServiceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *f.peers != "" || *f.peersFile != "" {
		if *f.metricsAddr != "" {
			return errors.New("-metrics-addr is not supported in peer mode yet")
		}
		explicit := make(map[string]bool)
		fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
		return servePeer(f, explicit)
	}
	s, err := f.start()
	if err != nil {
		return err
	}
	defer s.cleanup()

	fmt.Printf("consensus service up: %s, n=%d t=%d, %s transport, batch ≤ %d, linger %s, ≤ %d instances inflight\n",
		*f.algo, *f.n, *f.t, *f.trans, *f.batch, *f.linger, *f.inflight)
	if s.rt != nil {
		fmt.Printf("sharded: %d consensus groups, %s placement, strided instance-ID spaces\n",
			s.rt.Groups(), s.rt.Policy())
	}
	if *f.adaptive {
		mode := "batch/linger tuning + admission"
		if *f.adaptSelect {
			mode += " + per-instance algorithm selection"
		}
		fmt.Printf("adaptive control plane on: %s (decision log with -verbose)\n", mode)
	}
	if s.jn != nil {
		printJournalRecovery(s.jn)
	}
	if s.rt != nil {
		for _, jn := range s.rt.Journals() {
			printJournalRecovery(jn)
		}
	}
	if s.ops != nil {
		fmt.Printf("ops: http://%s/metrics (Prometheus text), /metrics.json (snapshot), /debug/pprof\n", s.ops.Addr())
	}
	fmt.Println("enter one integer proposal per line (EOF to stop):")

	scanErr := serveLoop(s.sink())
	if err := s.close(); err != nil {
		return err
	}
	if s.rt != nil {
		roll := s.rt.Snapshot()
		fmt.Printf("served %d proposals over %d instances across %d groups\n",
			roll.Resolved, roll.Instances, s.rt.Groups())
		for g, st := range roll.Groups {
			fmt.Printf("  group %d: %d proposals over %d instances; latency %s\n",
				g, st.Resolved, st.Instances, st.Latency)
		}
		printShardJournals(s.rt.Journals())
		if len(roll.Violations) > 0 {
			return fmt.Errorf("%d consensus violations: %v", len(roll.Violations), roll.Violations)
		}
		return scanErr
	}
	st := s.svc.Snapshot()
	fmt.Printf("served %d proposals over %d instances; latency %s\n",
		st.Resolved, st.Instances, st.Latency)
	if *f.adaptive {
		fmt.Printf("control plane: %d adjustments over %d ticks, final batch ≤ %d linger %s, %d selector transitions, %d proposals shed; algorithms %s\n",
			st.Control.Adjustments, st.Control.Ticks, st.Control.Batch, st.Control.Linger,
			st.Control.Transitions, st.Overloads, formatAlgs(st.Algorithms))
	}
	if s.jn != nil {
		js := s.jn.Snapshot()
		fmt.Printf("journal: %d decisions durable over %d fsyncs; fsync %s\n",
			js.Decisions, js.Syncs, js.SyncLatency)
	}
	if len(st.Violations) > 0 {
		return fmt.Errorf("%d consensus violations: %v", len(st.Violations), st.Violations)
	}
	return scanErr
}

// printShardJournals reports the per-group journals' durability summary.
func printShardJournals(jns []*journal.Journal) {
	for g, jn := range jns {
		js := jn.Snapshot()
		fmt.Printf("journal group %d: %d decisions durable over %d fsyncs; fsync %s\n",
			g, js.Decisions, js.Syncs, js.SyncLatency)
	}
}

// formatAlgs renders an instances-per-algorithm map as a stable
// name:count list.
func formatAlgs(algs map[string]int) string {
	if len(algs) == 0 {
		return "-"
	}
	names := make([]string, 0, len(algs))
	for name := range algs {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", name, algs[name]))
	}
	return strings.Join(parts, " ")
}

// cmdBenchService is the closed-loop load generator: C client workers
// each submit proposals back-to-back (propose, wait, repeat) until P
// proposals have resolved, optionally under an injected asynchronous
// period or a bursty arrival pattern (-burst releases proposals in
// waves separated by idle gaps — the shape the adaptive controller is
// built for), and the run reports throughput and latency percentiles.
// Proposals shed by admission control (-adaptive under saturation) are
// retried after a short backoff and reported.
func cmdBenchService(args []string) error {
	fs := flag.NewFlagSet("bench-service", flag.ContinueOnError)
	f := newServiceFlags(fs)
	var (
		proposals = fs.Int("proposals", 2048, "total proposals to drive")
		clients   = fs.Int("clients", 128, "closed-loop client workers")
		delay     = fs.Duration("delay", 0, "delay injected on p1's outbound links (memory transport)")
		heal      = fs.Duration("heal", 500*time.Millisecond, "when to heal the injected delay")
		burst     = fs.Int("burst", 0, "release proposals in waves of this size (0 = steady closed loop)")
		burstIdle = fs.Duration("burst-idle", 50*time.Millisecond, "idle gap between bursts")
		limit     = fs.Duration("limit", 5*time.Minute, "overall deadline")
		wl        = fs.String("workload", "", "drive a generated open-loop workload instead of the closed loop: gen:<seed>[:<maxevents>], @FILE or inline JSON")
		record    = fs.String("record", "", "with -workload: record the run as a replayable trace at this path (deterministic virtual-time execution unless -live)")
		liveRec   = fs.Bool("live", false, "with -workload -record: record the real-clock run instead of the deterministic virtual one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *wl != "" {
		return benchWorkload(f, *wl, *record, *liveRec, *limit)
	}
	if *record != "" || *liveRec {
		return errors.New("-record and -live need -workload")
	}
	s, err := f.start()
	if err != nil {
		return err
	}
	defer s.cleanup()
	if s.ops != nil {
		fmt.Printf("ops: http://%s/metrics (Prometheus text), /metrics.json (snapshot), /debug/pprof\n", s.ops.Addr())
	}
	svc := s.sink()
	if *delay > 0 {
		if s.hub == nil {
			return fmt.Errorf("delay injection needs the memory transport")
		}
		s.hub.DelayProcess(1, *delay)
		time.AfterFunc(*heal, s.hub.Heal)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *limit)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		next     = make(chan model.Value, *proposals)
	)
	// The feeder shapes the offered load: everything at once for the
	// steady closed loop, or waves separated by idle gaps for bursts
	// (clients block on the empty channel during a gap, so the service
	// sees real silence between waves).
	go func() {
		defer close(next)
		for i := 0; i < *proposals; {
			wave := *proposals - i
			if *burst > 0 && *burst < wave {
				wave = *burst
			}
			for j := 0; j < wave; j++ {
				next <- model.Value(i + j + 1)
			}
			i += wave
			if *burst > 0 && i < *proposals {
				select {
				case <-time.After(*burstIdle):
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	begin := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range next {
				for {
					fut, err := svc.Propose(ctx, v)
					if err == nil {
						_, err = fut.Wait(ctx)
					}
					if errors.Is(err, adapt.ErrOverload) {
						// Shed: back off and retry the same proposal.
						select {
						case <-time.After(time.Millisecond):
							continue
						case <-ctx.Done():
							err = ctx.Err()
						}
					}
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("proposal %d: %w", v, err)
						}
						errMu.Unlock()
						return
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin)
	if err := s.close(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}
	if s.rt != nil {
		return benchShardReport(f, s.rt, elapsed, *clients, *burst, *burstIdle)
	}

	st := s.svc.Snapshot()
	title := fmt.Sprintf("bench-service: %s, n=%d t=%d, %s transport, %d clients, batch ≤ %d, ≤ %d inflight",
		*f.algo, *f.n, *f.t, *f.trans, *clients, *f.batch, *f.inflight)
	if *f.adaptive {
		title += ", adaptive"
	}
	if *burst > 0 {
		title += fmt.Sprintf(", bursts of %d every %s", *burst, *burstIdle)
	}
	table := stats.NewTable(title, "metric", "value")
	table.AddRowf("proposals resolved", st.Resolved)
	table.AddRowf("instances decided", st.Instances)
	table.AddRowf("wall time", elapsed.Round(time.Millisecond))
	table.AddRowf("proposals/sec", fmt.Sprintf("%.0f", float64(st.Resolved)/elapsed.Seconds()))
	table.AddRowf("decisions/sec (instances)", fmt.Sprintf("%.0f", float64(st.Instances)/elapsed.Seconds()))
	table.AddRowf("mean batch", fmt.Sprintf("%.2f", float64(st.Resolved)/float64(max(st.Instances, 1))))
	table.AddRowf("batch fill mean %", fmt.Sprintf("%.0f", st.BatchFill.Mean))
	table.AddRowf("latency p50", st.Latency.P50.Round(time.Microsecond))
	table.AddRowf("latency p90", st.Latency.P90.Round(time.Microsecond))
	table.AddRowf("latency p99", st.Latency.P99.Round(time.Microsecond))
	table.AddRowf("latency max", st.Latency.Max.Round(time.Microsecond))
	table.AddRowf("decision latency p50", st.DecisionLatency.P50.Round(time.Microsecond))
	table.AddRowf("round latency p50", st.RoundLatency.P50.Round(time.Microsecond))
	table.AddRowf("rounds min..max (t+2 floor)", fmt.Sprintf("%d..%d (%d)", st.Rounds.Min, st.Rounds.Max, *f.t+2))
	table.AddRowf("check violations", len(st.Violations))
	if *f.adaptive {
		table.AddRowf("controller adjustments", st.Control.Adjustments)
		table.AddRowf("controller ticks", st.Control.Ticks)
		table.AddRowf("effective batch (final)", st.Control.Batch)
		table.AddRowf("effective linger (final)", st.Control.Linger)
		table.AddRowf("selector transitions", st.Control.Transitions)
		table.AddRowf("proposals shed (overload)", st.Overloads)
		table.AddRowf("algorithms", formatAlgs(st.Algorithms))
	}
	if s.jn != nil {
		js := s.jn.Snapshot()
		table.AddRowf("journal decisions durable", js.Decisions)
		table.AddRowf("journal fsyncs (group commits)", js.Syncs)
		table.AddRowf("journal fsync p99", js.SyncLatency.P99.Round(time.Microsecond))
		table.AddRowf("journal segments", js.Segments)
	}
	table.Render(os.Stdout)
	if len(st.Violations) > 0 {
		return fmt.Errorf("%d consensus violations: %v", len(st.Violations), st.Violations)
	}
	if st.Failed > 0 || st.InstanceFailures > 0 {
		return fmt.Errorf("%d proposals / %d instances failed", st.Failed, st.InstanceFailures)
	}
	return nil
}

// benchShardReport renders the sharded bench table: aggregate throughput
// across every group (the number the sharding exists to raise) plus one
// row per group, since latency percentiles do not merge across groups.
func benchShardReport(f serviceFlags, rt *shard.Runtime, elapsed time.Duration, clients, burst int, burstIdle time.Duration) error {
	roll := rt.Snapshot()
	title := fmt.Sprintf("bench-service: %s, n=%d t=%d, %s transport, %d clients, %d groups (%s placement), batch ≤ %d, ≤ %d inflight/group",
		*f.algo, *f.n, *f.t, *f.trans, clients, rt.Groups(), rt.Policy(), *f.batch, *f.inflight)
	if *f.adaptive {
		title += ", adaptive"
	}
	if burst > 0 {
		title += fmt.Sprintf(", bursts of %d every %s", burst, burstIdle)
	}
	table := stats.NewTable(title, "metric", "value")
	table.AddRowf("proposals resolved (all groups)", roll.Resolved)
	table.AddRowf("instances decided (all groups)", roll.Instances)
	table.AddRowf("wall time", elapsed.Round(time.Millisecond))
	table.AddRowf("aggregate proposals/sec", fmt.Sprintf("%.0f", float64(roll.Resolved)/elapsed.Seconds()))
	table.AddRowf("aggregate decisions/sec", fmt.Sprintf("%.0f", float64(roll.Instances)/elapsed.Seconds()))
	table.AddRowf("mean batch", fmt.Sprintf("%.2f", float64(roll.Resolved)/float64(max(roll.Instances, 1))))
	table.AddRowf("proposals shed (overload)", roll.Overloads)
	for g, st := range roll.Groups {
		table.AddRowf(fmt.Sprintf("group %d", g),
			fmt.Sprintf("%d proposals / %d instances, p50 %s p99 %s",
				st.Resolved, st.Instances,
				st.Latency.P50.Round(time.Microsecond), st.Latency.P99.Round(time.Microsecond)))
	}
	table.AddRowf("check violations", len(roll.Violations))
	for g, jn := range rt.Journals() {
		js := jn.Snapshot()
		table.AddRowf(fmt.Sprintf("journal group %d", g),
			fmt.Sprintf("%d decisions durable / %d fsyncs", js.Decisions, js.Syncs))
	}
	table.Render(os.Stdout)
	if len(roll.Violations) > 0 {
		return fmt.Errorf("%d consensus violations: %v", len(roll.Violations), roll.Violations)
	}
	if roll.Failed > 0 || roll.InstanceFailures > 0 {
		return fmt.Errorf("%d proposals / %d instances failed", roll.Failed, roll.InstanceFailures)
	}
	return nil
}
