// Command indulgence is the command-line front end of the reproduction:
// it runs single simulated runs, worst-case serial-run explorations, the
// full experiment suite (regenerating every table in EXPERIMENTS.md), live
// goroutine clusters, and the multi-instance consensus service.
//
// Usage:
//
//	indulgence run   [-algo A] [-n N] [-t T] [-sched S] [-gsr K] [-seed S]
//	indulgence worst [-algo A] [-n N] [-t T] [-mode all|prefix] [-maxround R]
//	indulgence table [-id E1|E2|...|A4|all] [-samples N]
//	indulgence live  [-algo A] [-n N] [-t T] [-transport memory|tcp]
//	                 [-delay D] [-crash P] [-timeout D]
//	indulgence serve [-algo A] [-n N] [-t T] [-transport memory|tcp]
//	                 [-batch B] [-linger D] [-inflight I] [-journal DIR]
//	                 [-groups G] [-placement P]
//	                 [-adaptive] [-adaptive-select] [-adaptive-batch-max B]
//	                 [-adaptive-linger-max D] [-verbose]
//	indulgence serve -peers p1=host:port,... -self N [-peers-file F]
//	                 [-cluster-id C] [-join-timeout D] [flags as above]
//	indulgence cluster [-n N] [-t T] [-proposals P] [-restart K]
//	                 [-groups G] [-placement P] [-journal DIR] [-bin PATH]
//	indulgence bench-service [-algo A] [-n N] [-t T] [-transport memory|tcp]
//	                 [-proposals P] [-clients C] [-batch B] [-linger D]
//	                 [-inflight I] [-delay D] [-heal D] [-timeout D]
//	                 [-groups G] [-placement P] [-classes K]
//	                 [-journal DIR] [-adaptive] [-burst N] [-burst-idle D]
//	                 [-workload gen:SEED|@FILE|JSON] [-record FILE] [-live]
//	indulgence replay -journal DIR [-limit N] [-quiet] [-verify=false]
//	indulgence replay-trace [-verbose] FILE
//	indulgence chaos [-seed S] [-scenarios N] [-groups G] [-spec JSON|@FILE]
//	                 [-workload gen:SEED|@FILE|JSON] [-journal DIR] [-verbose]
//
// Algorithms: atplus2, atplus2ff, diamonds, afplus2, floodset, floodsetws,
// ct, hurfinraynal, amr. Schedules: ff, killer2, killer3, splitbrain,
// random, randomes, delayedsender.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"indulgence/internal/baseline"
	"indulgence/internal/check"
	"indulgence/internal/core"
	"indulgence/internal/experiments"
	"indulgence/internal/lowerbound"
	"indulgence/internal/model"
	"indulgence/internal/runtime"
	"indulgence/internal/sched"
	"indulgence/internal/sim"
	"indulgence/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "indulgence:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return errors.New("missing subcommand")
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "worst":
		return cmdWorst(args[1:])
	case "table":
		return cmdTable(args[1:])
	case "live":
		return cmdLive(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "bench-service":
		return cmdBenchService(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	case "replay":
		return cmdReplay(args[1:])
	case "replay-trace":
		return cmdReplayTrace(args[1:])
	case "chaos":
		return cmdChaos(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: indulgence <run|worst|table|live|serve|bench-service|replay|replay-trace|chaos> [flags]

  run            simulate one run of an algorithm under a schedule
  worst          explore all serial runs and report the worst-case decision round
  table          regenerate the paper's experiment tables (E1..E9, A1..A4, all)
  live           run a live goroutine cluster (in-memory or TCP transport)
  serve          run the consensus service; proposals read from stdin, one per line
                 (with -peers: run as one member of a multi-process cluster;
                 with -groups G: shard over G consensus groups, -placement routes)
  bench-service  load test of the consensus service: closed loop, or a generated
                 open-loop workload with -workload (SLO classes, phase schedule;
                 -record FILE records a deterministic replayable trace)
  cluster        spawn a local multi-process cluster of serve -peers members,
                 optionally kill/restart one, and audit agreement across them
  replay         dump and verify a decision journal written by serve -journal
  replay-trace   re-execute a recorded workload trace and audit the replayed
                 decisions against the recording (byte-identical when recorded
                 deterministically); non-zero exit on any violation
  chaos          run seeded fault-injection scenarios on virtual time and audit
                 every decision; failing seeds print a replayable JSON spec
                 (-workload swaps wave load for generated classed arrivals)

run 'indulgence <cmd> -h' for the flags of each subcommand.`)
}

// factoryByName resolves an algorithm name to its factory.
func factoryByName(name string) (model.Factory, error) {
	switch name {
	case "atplus2":
		return core.New(core.Options{}), nil
	case "atplus2ff":
		return core.New(core.Options{FailureFreeFast: true}), nil
	case "diamonds":
		return core.NewDiamondS(), nil
	case "afplus2":
		return core.NewAfPlus2(), nil
	case "floodset":
		return baseline.NewFloodSet(), nil
	case "floodsetws":
		return baseline.NewFloodSetWS(), nil
	case "ct":
		return baseline.NewCT(), nil
	case "hurfinraynal":
		return baseline.NewHurfinRaynal(), nil
	case "amr":
		return baseline.NewAMR(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// scheduleByName builds a schedule from a generator name.
func scheduleByName(name string, n, t int, gsr model.Round, seed int64) (*sched.Schedule, model.Synchrony, error) {
	switch name {
	case "ff":
		return sched.FailureFree(n, t), model.ES, nil
	case "killer2":
		return sched.KillCoordinators(n, t, 2), model.ES, nil
	case "killer3":
		return sched.KillCoordinators(n, t, 3), model.ES, nil
	case "splitbrain":
		return sched.SplitBrain(n, model.Round(2*t+2)), model.ES, nil
	case "random":
		rng := rand.New(rand.NewSource(seed))
		return sched.RandomSynchronous(n, t, sched.RandomOpts{Rng: rng, DelayCrashSends: true}), model.ES, nil
	case "randomes":
		rng := rand.New(rand.NewSource(seed))
		if gsr < 2 {
			gsr = model.Round(t + 3)
		}
		return sched.RandomES(n, t, gsr, sched.RandomOpts{Rng: rng}), model.ES, nil
	case "delayedsender":
		if gsr < 2 {
			gsr = model.Round(t + 3)
		}
		return sched.DelayedSenderPrefix(n, t, gsr-1, 1), model.ES, nil
	default:
		return nil, 0, fmt.Errorf("unknown schedule %q", name)
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "atplus2", "algorithm")
		n        = fs.Int("n", 5, "number of processes")
		t        = fs.Int("t", 2, "resilience bound")
		name     = fs.String("sched", "ff", "schedule generator")
		gsr      = fs.Int("gsr", 0, "stabilization round for randomes/delayedsender")
		seed     = fs.Int64("seed", 1, "random seed")
		synch    = fs.String("model", "", "override model: scs or es")
		traceOut = fs.String("trace", "", "write the recorded run as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	factory, err := factoryByName(*algo)
	if err != nil {
		return err
	}
	s, syn, err := scheduleByName(*name, *n, *t, model.Round(*gsr), *seed)
	if err != nil {
		return err
	}
	switch *synch {
	case "scs":
		syn = model.SCS
	case "es":
		syn = model.ES
	case "":
	default:
		return fmt.Errorf("unknown model %q", *synch)
	}
	props := make([]model.Value, *n)
	for i := range props {
		props[i] = model.Value(i + 1)
	}
	cfg := sim.Config{Synchrony: syn, Schedule: s, Proposals: props, Factory: factory}
	if *algo == "atplus2" && *name == "splitbrain" {
		cfg.Factory = core.New(core.Options{UnsafeSkipResilienceCheck: true})
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("schedule: %v\n", s)
	table := stats.NewTable(fmt.Sprintf("run of %s under %s (%s)", *algo, *name, syn),
		"process", "proposal", "decision", "round", "crashed")
	for i, d := range res.Decisions {
		dec := "-"
		if d.Decided() {
			dec = fmt.Sprintf("%d", d.Value)
		}
		crash := "-"
		if res.CrashRounds[i] > 0 {
			crash = fmt.Sprintf("r%d", res.CrashRounds[i])
		}
		table.AddRowf(fmt.Sprintf("p%d", i+1), props[i], dec, d.Round, crash)
	}
	table.Render(os.Stdout)
	rep := check.Consensus(res, props)
	gdr, _ := res.GlobalDecisionRound()
	fmt.Printf("rounds executed: %d   global decision round: %d\n", res.Rounds, gdr)
	fmt.Printf("validity=%v agreement=%v termination=%v\n", rep.Validity, rep.Agreement, rep.Termination)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Run.WriteJSON(f); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	return nil
}

func cmdWorst(args []string) error {
	fs := flag.NewFlagSet("worst", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "atplus2", "algorithm")
		n        = fs.Int("n", 5, "number of processes")
		t        = fs.Int("t", 2, "resilience bound")
		mode     = fs.String("mode", "prefix", "receiver-subset mode: prefix or all")
		maxRound = fs.Int("maxround", 0, "last round a crash may occur in (default 2t+2)")
		scs      = fs.Bool("scs", false, "explore under SCS instead of ES")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	factory, err := factoryByName(*algo)
	if err != nil {
		return err
	}
	m := lowerbound.PrefixSubsets
	if *mode == "all" {
		m = lowerbound.AllSubsets
	}
	syn := model.ES
	if *scs {
		syn = model.SCS
	}
	props := make([]model.Value, *n)
	for i := range props {
		props[i] = model.Value(i + 1)
	}
	res, err := lowerbound.Explore(lowerbound.Config{
		N: *n, T: *t,
		Synchrony:     syn,
		Factory:       factory,
		Proposals:     props,
		MaxCrashRound: model.Round(*maxRound),
		Mode:          m,
	})
	if err != nil {
		return err
	}
	fmt.Printf("explored %d serial runs of %s (n=%d t=%d %s)\n", res.Runs, *algo, *n, *t, syn)
	fmt.Printf("worst-case global decision round: %d (earliest decision in that run: %d)\n",
		res.WorstRound, res.WitnessEarliest)
	fmt.Printf("witness: %v\n", res.Witness)
	if res.Undecided {
		fmt.Println("warning: some run did not decide within the horizon")
	}
	if res.PropertyViolation != nil {
		fmt.Printf("CONSENSUS VIOLATION: %v\n  in %v\n", res.PropertyViolation, res.ViolationWitness)
	}
	return nil
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ContinueOnError)
	var (
		id      = fs.String("id", "all", "experiment id (E1..E9, A1..A4, all)")
		samples = fs.Int("samples", 200, "sample count for randomized experiments")
		seed    = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runners := map[string]func() (*experiments.Outcome, error){
		"E1":  experiments.E1LowerBound,
		"E2":  func() (*experiments.Outcome, error) { return experiments.E2FastDecision(*samples, *seed) },
		"E3":  func() (*experiments.Outcome, error) { return experiments.E3PriceTable(3) },
		"E4":  experiments.E4FailureFree,
		"E5":  experiments.E5EarlyDecision,
		"E6":  experiments.E6EventualFast,
		"E7":  func() (*experiments.Outcome, error) { return experiments.E7FDSimulation(*samples, *seed) },
		"E8":  experiments.E8ResiliencePrice,
		"E9":  experiments.E9LiveRuntime,
		"E10": experiments.E10AverageCase,
		"A1":  experiments.AblationPhase1,
		"A2":  experiments.AblationHaltExchange,
		"A3":  experiments.AblationThreshold,
		"A4":  experiments.AblationPlurality,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "A1", "A2", "A3", "A4"}
	ids := order
	if *id != "all" {
		if _, ok := runners[*id]; !ok {
			return fmt.Errorf("unknown experiment %q", *id)
		}
		ids = []string{*id}
	}
	failed := 0
	for _, eid := range ids {
		o, err := runners[eid]()
		if err != nil {
			return fmt.Errorf("%s: %w", eid, err)
		}
		fmt.Println(o)
		if !o.OK() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}

func cmdLive(args []string) error {
	fs := flag.NewFlagSet("live", flag.ContinueOnError)
	var (
		algo    = fs.String("algo", "atplus2", "algorithm")
		n       = fs.Int("n", 5, "number of processes")
		t       = fs.Int("t", 2, "resilience bound")
		trans   = fs.String("transport", "memory", "transport: memory or tcp")
		delay   = fs.Duration("delay", 0, "delay injected on p1's outbound links (memory transport)")
		heal    = fs.Duration("heal", 200*time.Millisecond, "when to heal the injected delay")
		crash   = fs.Int("crash", 0, "crash this process shortly after start (0 = none)")
		timeout = fs.Duration("timeout", 25*time.Millisecond, "base suspicion timeout")
		wait    = fs.String("wait", "unsuspected", "wait policy: unsuspected or quorum")
		limit   = fs.Duration("limit", 30*time.Second, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	factory, err := factoryByName(*algo)
	if err != nil {
		return err
	}
	policy := core.WaitUnsuspected
	if *wait == "quorum" {
		policy = core.WaitQuorum
	}

	eps, hub, closeTransport, err := buildEndpoints(*trans, *n)
	if err != nil {
		return err
	}
	defer closeTransport()

	props := make([]model.Value, *n)
	for i := range props {
		props[i] = model.Value(i + 1)
	}
	cl, err := runtime.New(runtime.Config{
		N: *n, T: *t,
		Factory:     factory,
		Proposals:   props,
		Endpoints:   eps,
		WaitPolicy:  policy,
		BaseTimeout: *timeout,
	})
	if err != nil {
		return err
	}
	if *delay > 0 && hub != nil {
		hub.DelayProcess(1, *delay)
		time.AfterFunc(*heal, hub.Heal)
	}
	if *crash > 0 {
		p := model.ProcessID(*crash)
		time.AfterFunc(*timeout/2, func() { _ = cl.Crash(p) })
	}
	ctx, cancel := context.WithTimeout(context.Background(), *limit)
	defer cancel()
	results, err := cl.Run(ctx)
	if err != nil {
		return err
	}
	table := stats.NewTable(fmt.Sprintf("live %s cluster, %s transport", *algo, *trans),
		"process", "proposal", "decision", "round", "latency", "crashed")
	for _, r := range results {
		dec := "-"
		if v, ok := r.Decision.Get(); ok {
			dec = fmt.Sprintf("%d", v)
		}
		table.AddRowf(fmt.Sprintf("p%d", r.ID), props[r.ID-1], dec, r.Round,
			r.Elapsed.Round(time.Microsecond), r.Crashed)
	}
	table.Render(os.Stdout)
	return nil
}
