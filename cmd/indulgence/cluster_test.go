package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// buildBinary compiles the indulgence CLI into dir and returns its
// path — the cluster driver spawns real OS processes, so it needs a
// real binary, not the test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; cannot build the binary to spawn")
	}
	bin := filepath.Join(t.TempDir(), "indulgence")
	out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestClusterMultiProcessRestart is the acceptance test of the
// multi-process transport: three separately launched `indulgence serve
// -peers` OS processes reach agreement over real TCP, one is killed
// (SIGKILL) and restarted with its journal, rejoins via reconnect, and
// the cross-process check.Replay audit reports zero violations.
func TestClusterMultiProcessRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real OS processes")
	}
	bin := buildBinary(t)
	err := run([]string{"cluster",
		"-bin", bin,
		"-n", "3", "-t", "1",
		"-proposals", "6",
		"-restart", "2",
		"-timeout", "15ms",
		"-journal", filepath.Join(t.TempDir(), "journals"),
		"-echo=false",
	})
	if err != nil {
		t.Fatalf("cluster with restart: %v", err)
	}
}

// TestClusterShardedRestart is the sharded twin of the restart test:
// every member runs two consensus groups over one TCP connection per
// peer pair, one member is killed and restarted with both its group
// journals, and the merged cross-group, cross-process audit holds.
func TestClusterShardedRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real OS processes")
	}
	bin := buildBinary(t)
	err := run([]string{"cluster",
		"-bin", bin,
		"-n", "3", "-t", "1",
		"-groups", "2", "-placement", "key-affinity",
		"-proposals", "6",
		"-restart", "2",
		"-timeout", "15ms",
		"-journal", filepath.Join(t.TempDir(), "journals"),
		"-echo=false",
	})
	if err != nil {
		t.Fatalf("sharded cluster with restart: %v", err)
	}
}

func TestClusterFlagErrors(t *testing.T) {
	cases := [][]string{
		{"cluster", "-n", "1"},
		{"cluster", "-n", "200"},
		{"cluster", "-restart", "9", "-n", "3"},
		{"cluster", "-restart", "-1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestServePeerFlagErrors(t *testing.T) {
	cases := [][]string{
		// Peer mode without -self.
		{"serve", "-peers", "p1=127.0.0.1:9001,p2=127.0.0.1:9002"},
		// -peers and -peers-file together.
		{"serve", "-peers", "p1=127.0.0.1:9001,p2=127.0.0.1:9002", "-peers-file", "x", "-self", "1"},
		// Malformed specs.
		{"serve", "-peers", "nonsense", "-self", "1"},
		{"serve", "-peers", "p1=127.0.0.1:9001,p1=127.0.0.1:9002", "-self", "1"},
		{"serve", "-peers", "p1=127.0.0.1:9001,p2=127.0.0.1:9002", "-self", "7"},
		// Missing peers file.
		{"serve", "-peers-file", "/nonexistent/peers.conf", "-self", "1"},
		// Unknown algorithm still rejected in peer mode.
		{"serve", "-peers", "p1=127.0.0.1:9001,p2=127.0.0.1:9002", "-self", "1", "-algo", "unknown"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestServePeerFlagConflicts(t *testing.T) {
	spec := "p1=127.0.0.1:9001,p2=127.0.0.1:9002,p3=127.0.0.1:9003"
	if err := run([]string{"serve", "-peers", spec, "-self", "1", "-n", "5"}); err == nil {
		t.Error("contradicting -n accepted in peer mode")
	}
	if err := run([]string{"serve", "-peers", spec, "-self", "1", "-transport", "memory"}); err == nil {
		t.Error("-transport memory accepted in peer mode")
	}
}
